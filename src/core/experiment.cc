#include "src/core/experiment.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/fault/fault_injector.h"
#include "src/obs/timeseries/timeseries.h"

namespace jockey {

const char* PolicyName(PolicyKind policy) {
  switch (policy) {
    case PolicyKind::kJockey:
      return "Jockey";
    case PolicyKind::kJockeyNoAdapt:
      return "Jockey w/o adaptation";
    case PolicyKind::kJockeyNoSim:
      return "Jockey w/o simulator";
    case PolicyKind::kMaxAllocation:
      return "max allocation";
    case PolicyKind::kFixed:
      return "fixed";
  }
  return "unknown";
}

const char* PolicyId(PolicyKind policy) {
  switch (policy) {
    case PolicyKind::kJockey:
      return "jockey";
    case PolicyKind::kJockeyNoAdapt:
      return "jockey_no_adapt";
    case PolicyKind::kJockeyNoSim:
      return "jockey_no_sim";
    case PolicyKind::kMaxAllocation:
      return "max_allocation";
    case PolicyKind::kFixed:
      return "fixed";
  }
  return "unknown";
}

std::optional<PolicyKind> ParsePolicyKind(const std::string& token) {
  for (PolicyKind policy : {PolicyKind::kJockey, PolicyKind::kJockeyNoAdapt,
                            PolicyKind::kJockeyNoSim, PolicyKind::kMaxAllocation,
                            PolicyKind::kFixed}) {
    if (token == PolicyId(policy)) {
      return policy;
    }
  }
  return std::nullopt;
}

DeadlineChange::DeadlineChange(double at, double new_deadline)
    : at_seconds(at), new_deadline_seconds(new_deadline) {
  if (at_seconds < 0.0) {
    throw std::invalid_argument("DeadlineChange: at_seconds must be >= 0");
  }
  if (new_deadline_seconds <= 0.0) {
    throw std::invalid_argument("DeadlineChange: new_deadline_seconds must be > 0");
  }
}

OverloadEpisode::OverloadEpisode(double start, double duration, double util)
    : start_seconds(start), duration_seconds(duration), utilization(util) {
  if (start_seconds < 0.0) {
    throw std::invalid_argument("OverloadEpisode: start_seconds must be >= 0");
  }
  if (duration_seconds <= 0.0) {
    throw std::invalid_argument("OverloadEpisode: duration_seconds must be > 0");
  }
  if (utilization <= 0.0) {
    throw std::invalid_argument("OverloadEpisode: utilization must be > 0");
  }
}

ClusterConfig DefaultExperimentCluster(uint64_t seed) {
  ClusterConfig config;
  // Large enough that the 100-token experiment slice is a small fraction of capacity
  // (the production cluster has thousands of nodes; an SLO job must not move overall
  // utilization by itself).
  config.num_machines = 150;
  config.slots_per_machine = 4;
  config.seed = seed;
  // The paper's cluster averages 80% utilization across *admitted* work; pending
  // background work additionally soaks spare capacity, so the demand process here
  // runs hotter than 0.8 — what is left over is the fluctuating spare pool that
  // Section 2.4 identifies as the dominant variance source.
  config.background.mean_utilization = 0.95;
  config.background.volatility = 0.06;
  config.background.min_utilization = 0.55;
  config.background.max_utilization = 1.35;
  // Overload episodes are injected per-experiment (Fig 6(a)); day-to-day divergence
  // comes from the per-run "weather" drawn in RunExperiment.
  config.background.overload_rate_per_hour = 0.0;
  config.background.overload_utilization = 1.3;
  config.background.overload_duration_seconds = 900.0;
  config.contention_threshold = 0.7;
  config.contention_slope = 1.2;
  return config;
}

TrainedJob TrainJob(JobTemplate tmpl, const TrainingOptions& options) {
  TrainedJob trained;
  trained.tmpl = std::make_shared<const JobTemplate>(std::move(tmpl));

  ClusterConfig cluster_config = options.cluster;
  cluster_config.seed = options.seed;
  // The training execution sees typical shared-cluster conditions but no overload
  // episodes (those are injected per-experiment).
  cluster_config.background.overload_rate_per_hour = 0.0;
  ClusterSimulator cluster(cluster_config);
  JobSubmission submission;
  submission.guaranteed_tokens = options.guaranteed_tokens;
  submission.seed = options.seed * 7919 + 13;
  int job_id = cluster.SubmitJob(*trained.tmpl, submission);
  cluster.Run();
  assert(cluster.result(job_id).finished && "training run did not finish");

  trained.training_trace = cluster.result(job_id).trace;
  trained.jockey = std::make_shared<const Jockey>(trained.tmpl->graph, trained.training_trace,
                                                  options.jockey);
  return trained;
}

ExperimentResult RunExperiment(const TrainedJob& job, const ExperimentOptions& options) {
  ClusterConfig cluster_config = DefaultExperimentCluster(options.seed * 2654435761ULL + 17);
  if (options.background_utilization.has_value()) {
    // A scenario phase pinned the mean background demand (ramp/burst/diurnal shape).
    cluster_config.background.mean_utilization = *options.background_utilization;
  } else {
    // Cluster "weather": the mean background demand the run experiences differs from
    // the training day's. Hot days thin out spare capacity and add contention for the
    // whole run — the changing cluster conditions of Section 5.2.
    Rng weather_rng(options.seed * 6364136223846793005ULL + 1442695040888963407ULL);
    cluster_config.background.mean_utilization = weather_rng.Uniform(0.88, 1.12);
  }
  cluster_config.event_engine = options.event_engine;
  ClusterSimulator cluster(cluster_config);
  if (options.overload.has_value()) {
    cluster.background().AddEpisode(options.overload->start_seconds,
                                    options.overload->duration_seconds,
                                    options.overload->utilization);
  }

  const Jockey& jockey = *job.jockey;
  ControlLoopConfig control =
      options.control_override.value_or(jockey.config().control);
  control.max_tokens = options.max_tokens;
  // The harness drives control ticks at a known cadence; plumb it in so blackout
  // detection has a sane baseline even when the first observed gap spans a blackout.
  control.control_period_hint_seconds = options.control_period_seconds;
  if (options.warm_start_tokens > 0) {
    control.warm_start_tokens = options.warm_start_tokens;
  }

  std::unique_ptr<JockeyController> adaptive;
  std::unique_ptr<FixedAllocationController> fixed;
  JobController* controller = nullptr;
  switch (options.policy) {
    case PolicyKind::kJockey:
      adaptive = jockey.MakeController(DeadlineUtility(options.deadline_seconds), control);
      controller = adaptive.get();
      break;
    case PolicyKind::kJockeyNoAdapt: {
      auto probe = jockey.MakeController(DeadlineUtility(options.deadline_seconds), control);
      fixed = std::make_unique<FixedAllocationController>(probe->InitialAllocation());
      controller = fixed.get();
      break;
    }
    case PolicyKind::kJockeyNoSim:
      adaptive = jockey.MakeAmdahlController(DeadlineUtility(options.deadline_seconds), control);
      controller = adaptive.get();
      break;
    case PolicyKind::kMaxAllocation:
      fixed = std::make_unique<MaxAllocationController>(options.max_tokens);
      controller = fixed.get();
      break;
    case PolicyKind::kFixed:
      fixed = std::make_unique<FixedAllocationController>(options.fixed_tokens);
      controller = fixed.get();
      break;
  }
  if (adaptive != nullptr && options.deadline_change.has_value()) {
    adaptive->ScheduleUtilityChange(
        options.deadline_change->at_seconds,
        DeadlineUtility(options.deadline_change->new_deadline_seconds));
  }

  double input_scale = options.input_scale;
  if (options.jitter_input) {
    // Input-size variation across runs of a recurring job (Section 2.3). Most runs
    // stay near the training input; occasionally the input grows substantially, as in
    // Table 3 where controlled runs needed 1.5-2x the training work.
    Rng jitter_rng(options.seed * 48271 + 5);
    if (jitter_rng.Bernoulli(0.25)) {
      input_scale *= jitter_rng.Uniform(1.2, 1.4);
    } else {
      input_scale *= std::clamp(jitter_rng.LogNormal(0.02, 0.10), 0.85, 1.35);
    }
  }

  JobSubmission submission;
  // Overwritten by the first control tick; a warm start seeds it with last run's
  // realized need so the pre-tick dispatch already runs at the right width.
  submission.guaranteed_tokens =
      options.warm_start_tokens > 0
          ? std::clamp(options.warm_start_tokens, 1, options.max_tokens)
          : 1;
  submission.max_guaranteed_tokens = options.max_tokens;
  submission.input_scale = input_scale;
  submission.use_spare_tokens = options.use_spare_tokens;
  submission.controller = controller;
  submission.control_period_seconds = options.control_period_seconds;
  submission.seed = options.seed * 104729 + 71;
  // Event capture tees into the caller's sink (if any) so --trace-out and the
  // postmortem analyzer see the identical stream.
  VectorSink capture_sink;
  TeeSink tee(options.observer.sink(), &capture_sink);
  Observer observer = options.observer;
  if (options.capture_events) {
    observer = Observer(&tee, options.observer.metrics());
  }
  cluster.set_observer(observer);
  std::optional<FaultInjector> injector;
  if (options.fault_plan != nullptr && !options.fault_plan->empty()) {
    injector.emplace(*options.fault_plan);
    cluster.set_fault_injector(&*injector);
  }
  if (adaptive != nullptr) {
    adaptive->set_observer(observer, /*job_label=*/0);
    if (injector.has_value()) {
      adaptive->set_fault_injector(&*injector);
    }
  }
  if (options.timeseries != nullptr) {
    // Each experiment is one run on the recorder. The SLO health machine judges
    // against the *effective* deadline (a mid-run change replaces it), the same bar
    // met_deadline below and the postmortem verdict use — so the recorder's final
    // state agrees with both by construction.
    options.timeseries->set_observer(observer);
    options.timeseries->BeginRun(options.deadline_change.has_value()
                                     ? options.deadline_change->new_deadline_seconds
                                     : options.deadline_seconds);
    cluster.set_timeseries_recorder(options.timeseries);
  }
  int job_id = cluster.SubmitJob(*job.tmpl, submission);
  cluster.Run();

  const ClusterRunResult& run = cluster.result(job_id);
  ExperimentResult result;
  result.job_name = job.name();
  result.policy = options.policy;
  // The effective deadline accounts for a mid-run change (the new SLO is the one the
  // run is judged against).
  result.deadline_seconds = options.deadline_change.has_value()
                                ? options.deadline_change->new_deadline_seconds
                                : options.deadline_seconds;
  result.completion_seconds = run.CompletionSeconds();
  result.met_deadline = run.finished && result.completion_seconds <= result.deadline_seconds;
  result.latency_ratio = result.completion_seconds / result.deadline_seconds;
  result.total_work_seconds = run.trace.TotalWorkSeconds();
  result.oracle_tokens = OracleAllocation(result.total_work_seconds, result.deadline_seconds);
  result.requested_token_seconds = run.guaranteed_token_seconds;
  double oracle_token_seconds =
      static_cast<double>(result.oracle_tokens) * result.deadline_seconds;
  result.frac_above_oracle =
      result.requested_token_seconds > 0.0
          ? std::max(0.0, result.requested_token_seconds - oracle_token_seconds) /
                result.requested_token_seconds
          : 0.0;
  result.run = run;
  if (adaptive != nullptr) {
    result.control_log = adaptive->log();
  }
  if (options.capture_events) {
    result.events = std::move(capture_sink).TakeEvents();
  }
  return result;
}

double SuggestDeadlineSeconds(const TrainedJob& job, bool tight) {
  // Use the raw (unscaled) critical path of the training run; the Jockey model's
  // profile carries the largest-observed-input headroom, which would inflate SLOs.
  JobProfile raw = JobProfile::FromTrace(job.tmpl->graph, job.training_trace);
  double cp = raw.CriticalPathSeconds(job.tmpl->graph);
  double trained = job.training_trace.CompletionSeconds();
  double base = std::max(1.8 * cp, 1.45 * trained);
  // Round up to whole minutes, as operators do when writing SLOs.
  double minutes = std::ceil(base / 60.0);
  double deadline = minutes * 60.0;
  return tight ? deadline : 2.0 * deadline;
}

}  // namespace jockey
