// The Amdahl's-Law completion-time model (Section 4.1).
//
// "Amdahl's Law states that if the serial part of a program takes time S to execute
// on a single processor, and the parallel part takes time P, then running the program
// with N processors takes S + P/N time. In our case, we let S be the length of the
// critical path of the job and P be the aggregate CPU time spent executing the job,
// minus the time on the critical path."
//
// At runtime, with f_s the fraction of finished tasks in stage s,
//   S_t = max_{s : f_s < 1} (1 - f_s) l_s + L_s        (remaining critical path)
//   P_t = sum_{s : f_s < 1} (1 - f_s) T_s              (remaining total work)
// and the remaining completion time at allocation a is S_t + max(0, P_t - S_t) / a.
//
// This is the predictor behind the "Jockey w/o simulator" baseline; the evaluation
// (Fig 8) shows it is less accurate than the simulator at small allocations.

#ifndef SRC_CORE_AMDAHL_H_
#define SRC_CORE_AMDAHL_H_

#include <vector>

#include "src/dag/job_graph.h"
#include "src/dag/profile.h"

namespace jockey {

class AmdahlModel {
 public:
  AmdahlModel(const JobGraph& graph, const JobProfile& profile);

  // Remaining completion seconds at `allocation` tokens given per-stage completed
  // fractions. Requires allocation >= 1.
  double PredictRemaining(const std::vector<double>& frac_complete, double allocation) const;

  // Prediction for a fresh job (no progress).
  double PredictTotal(double allocation) const;

  // Critical path of the whole job under the profile's longest tasks.
  double CriticalPathSeconds() const { return s0_; }
  // Aggregate CPU seconds of the whole job.
  double TotalWorkSeconds() const { return p0_; }

 private:
  std::vector<double> ls_;      // longest task per stage
  std::vector<double> suffix_;  // L_s: longest path strictly after stage s
  std::vector<double> ts_;      // total CPU seconds per stage
  double s0_ = 0.0;
  double p0_ = 0.0;
};

}  // namespace jockey

#endif  // SRC_CORE_AMDAHL_H_
