// Admission control for SLO jobs (Section 1).
//
// "Jockey's job model can be used to check whether a newly submitted job would 'fit'
// in the cluster — that is, that all previously accepted SLO jobs would still be able
// to meet their deadlines — before permitting it to run."
//
// AdmissionController keeps a ledger of token reservations over time. A new SLO job
// is admitted if some reservation level r satisfies both conditions: the job's
// slack-adjusted worst-case completion at r tokens meets its deadline, and r fits
// under the budget alongside every overlapping reservation for its whole duration.
// Reservations expire at their deadline (the paper's jobs release tokens when done;
// the deadline is the guaranteed-by bound).

#ifndef SRC_CORE_ADMISSION_H_
#define SRC_CORE_ADMISSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/jockey.h"
#include "src/util/event_queue.h"

namespace jockey {

struct Reservation {
  std::string job_name;
  SimTime start = 0.0;
  SimTime end = 0.0;  // the job's deadline: tokens are guaranteed until then
  int tokens = 0;
};

struct AdmissionDecision {
  bool admitted = false;
  int reserved_tokens = 0;  // minimum reservation that fits and meets the deadline
  std::string reason;       // populated for rejections
};

class AdmissionController {
 public:
  // `total_tokens` is the guaranteed-token budget available to SLO jobs.
  explicit AdmissionController(int total_tokens);

  // Considers a job submitted at `now` with the given deadline (absolute time =
  // now + deadline_seconds). On admission the reservation is recorded.
  AdmissionDecision Admit(const std::string& job_name, const Jockey& model, SimTime now,
                          double deadline_seconds);

  // Drops reservations that ended at or before `now` (jobs completed or expired).
  void ReleaseExpired(SimTime now);

  // Explicitly releases a job's reservation (it finished early).
  void Release(const std::string& job_name);

  // Peak tokens reserved during [start, end) by current reservations.
  int PeakReserved(SimTime start, SimTime end) const;

  int total_tokens() const { return total_tokens_; }
  const std::vector<Reservation>& reservations() const { return reservations_; }

 private:
  int total_tokens_;
  std::vector<Reservation> reservations_;
};

}  // namespace jockey

#endif  // SRC_CORE_ADMISSION_H_
