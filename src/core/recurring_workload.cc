#include "src/core/recurring_workload.h"

#include <algorithm>

#include "src/cluster/cluster_simulator.h"
#include "src/core/decision_cache.h"
#include "src/core/experiment.h"
#include "src/obs/analysis/postmortem.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace jockey {

RecurringWorkload::RecurringWorkload(const RecurringWorkloadConfig& config) : config_(config) {
  Rng rng(config_.seed);
  for (int j = 0; j < config_.num_jobs; ++j) {
    jobs_.push_back(MakeRandomJob("recurring" + std::to_string(j), rng, config_.job_params));
    quotas_.push_back(std::max(
        4, static_cast<int>(jobs_.back().ExpectedTotalWorkSeconds() / config_.quota_target_seconds)));
  }
}

double RecurringWorkload::InputScaleFor(uint64_t seed) const {
  Rng jitter(seed * 48271 + 9);
  if (jitter.Bernoulli(config_.growth_prob)) {
    return jitter.Uniform(config_.growth_lo, config_.growth_hi);
  }
  return std::clamp(jitter.LogNormal(0.02, config_.jitter_sigma), 0.85, 1.35);
}

std::vector<RecurringRun> RecurringWorkload::Execute(bool use_spare_tokens) const {
  // Every (job, run) execution is independent — its own cluster simulator, with all
  // randomness derived from the (j, run) counters below — so the fleet fans across
  // the thread pool and each task writes its pre-assigned slot. The result vector is
  // bit-identical for any thread count.
  const size_t total = static_cast<size_t>(config_.num_jobs) *
                       static_cast<size_t>(config_.runs_per_job);
  std::vector<RecurringRun> runs(total);
  int threads = config_.threads == 0 ? ThreadPool::DefaultThreadCount() : config_.threads;
  ParallelFor(threads, total, [&](size_t idx) {
    int j = static_cast<int>(idx) / config_.runs_per_job;
    int run = static_cast<int>(idx) % config_.runs_per_job;
    uint64_t seed = static_cast<uint64_t>(j) * 1000 + static_cast<uint64_t>(run) +
                    config_.seed * 7919;
    ClusterConfig cluster_config = DefaultExperimentCluster(seed * 2654435761ULL + 3);
    Rng weather(seed * 7777 + 1);
    cluster_config.background.mean_utilization =
        weather.Uniform(config_.min_utilization, config_.max_utilization);

    RecurringRun record;
    record.job_index = j;
    record.input_scale = InputScaleFor(seed);

    ClusterSimulator cluster(cluster_config);
    JobSubmission submission;
    submission.guaranteed_tokens = quotas_[static_cast<size_t>(j)];
    submission.input_scale = record.input_scale;
    submission.use_spare_tokens = use_spare_tokens;
    submission.seed = seed * 104729 + 5;
    int id = cluster.SubmitJob(jobs_[static_cast<size_t>(j)], submission);
    cluster.Run();
    const ClusterRunResult& result = cluster.result(id);
    record.completion_seconds = result.CompletionSeconds();
    record.spare_task_fraction = result.spare_task_fraction;
    record.max_parallelism = result.max_parallelism;
    runs[idx] = record;
  });
  return runs;
}

std::vector<RecurringRun> RecurringWorkload::ExecuteControlled(
    const ControlledRecurringConfig& controlled) const {
  const size_t total = static_cast<size_t>(config_.num_jobs) *
                       static_cast<size_t>(config_.runs_per_job);
  std::vector<RecurringRun> runs(total);
  int threads = config_.threads == 0 ? ThreadPool::DefaultThreadCount() : config_.threads;
  // Fan out over jobs, not (job, run) pairs: run r+1's warm start is derived from
  // run r's postmortem, so the runs of one job form a serial chain.
  ParallelFor(threads, static_cast<size_t>(config_.num_jobs), [&](size_t jz) {
    const int j = static_cast<int>(jz);
    TrainingOptions training;
    training.seed = 900 + static_cast<uint64_t>(j);
    const TrainedJob trained = TrainJob(jobs_[jz], training);
    const double deadline = SuggestDeadlineSeconds(trained, controlled.tight_deadline);

    int warm = 0;  // cold start for run 0
    for (int run = 0; run < config_.runs_per_job; ++run) {
      const uint64_t seed = static_cast<uint64_t>(j) * 1000 + static_cast<uint64_t>(run) +
                            config_.seed * 7919;
      // Same weather and input-scale draws as Execute(), so the controlled fleet
      // faces the per-run conditions the uncontrolled one does.
      Rng weather(seed * 7777 + 1);

      ExperimentOptions options;
      options.deadline_seconds = deadline;
      options.policy = PolicyKind::kJockey;
      options.seed = seed * 104729 + 5;
      options.input_scale = InputScaleFor(seed);
      options.jitter_input = false;  // the scale above already carries the variation
      options.control_period_seconds = controlled.control_period_seconds;
      options.max_tokens = controlled.max_tokens;
      options.warm_start_tokens = controlled.warm_start ? warm : 0;
      options.background_utilization =
          weather.Uniform(config_.min_utilization, config_.max_utilization);
      options.capture_events = true;  // the postmortem input
      if (controlled.decision_cache) {
        ControlLoopConfig control = trained.jockey->config().control;
        control.enable_decision_cache = true;
        options.control_override = control;
      }

      const ExperimentResult result = RunExperiment(trained, options);

      PostmortemOptions postmortem_options;
      postmortem_options.deadline_seconds = deadline;
      const PostmortemReport postmortem = BuildPostmortem(result.events, postmortem_options);
      // Single-job run: the report carries exactly one job entry.
      const double critical_path_exec =
          postmortem.jobs.empty() ? 0.0 : postmortem.jobs.front().budget.exec;

      RecurringRun& record = runs[jz * static_cast<size_t>(config_.runs_per_job) +
                                 static_cast<size_t>(run)];
      record.job_index = j;
      record.input_scale = options.input_scale;
      record.completion_seconds = result.completion_seconds;
      record.spare_task_fraction = result.run.spare_task_fraction;
      record.max_parallelism = result.run.max_parallelism;
      record.met_deadline = result.met_deadline;
      record.deadline_seconds = deadline;
      record.warm_start_tokens = options.warm_start_tokens;
      record.critical_path_exec_seconds = critical_path_exec;
      record.total_work_seconds = result.total_work_seconds;

      warm = WarmStartAllocation(critical_path_exec, result.total_work_seconds, deadline,
                                 1, controlled.max_tokens);
    }
  });
  return runs;
}

std::vector<double> RecurringWorkload::CompletionCov(const std::vector<RecurringRun>& runs) {
  int max_job = -1;
  for (const auto& run : runs) {
    max_job = std::max(max_job, run.job_index);
  }
  std::vector<std::vector<double>> per_job(static_cast<size_t>(max_job + 1));
  for (const auto& run : runs) {
    per_job[static_cast<size_t>(run.job_index)].push_back(run.completion_seconds);
  }
  std::vector<double> covs;
  for (const auto& completions : per_job) {
    if (completions.size() >= 2) {
      covs.push_back(CoefficientOfVariation(completions));
    }
  }
  return covs;
}

std::vector<double> RecurringWorkload::CompletionCovSimilarInputs(
    const std::vector<RecurringRun>& runs) {
  std::vector<RecurringRun> similar;
  for (const auto& run : runs) {
    if (run.input_scale > 0.9 && run.input_scale < 1.1) {
      similar.push_back(run);
    }
  }
  // Require enough similar runs per job for a meaningful CoV.
  int max_job = -1;
  for (const auto& run : similar) {
    max_job = std::max(max_job, run.job_index);
  }
  std::vector<std::vector<double>> per_job(static_cast<size_t>(max_job + 1));
  for (const auto& run : similar) {
    per_job[static_cast<size_t>(run.job_index)].push_back(run.completion_seconds);
  }
  std::vector<double> covs;
  for (const auto& completions : per_job) {
    if (completions.size() >= 5) {
      covs.push_back(CoefficientOfVariation(completions));
    }
  }
  return covs;
}

}  // namespace jockey
