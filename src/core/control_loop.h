// The resource-allocation control loop (Section 4.3).
//
// Every control period the loop:
//   1. computes progress p from the per-stage completed fractions via the progress
//      indicator;
//   2. for each candidate allocation a, predicts remaining time C(p, a) (simulator
//      table) or via the Amdahl model, multiplied by the slack factor;
//   3. evaluates expected utility U_a = U(t_r + prediction) with the utility function
//      shifted left by the dead zone D;
//   4. picks the raw allocation A_r = argmin_a { a : U_a = max_b U_b } — the minimum
//      allocation that maximizes utility;
//   5. moderates: increases are applied only when the job is at least D behind
//      schedule at its current allocation (dead zone); the applied allocation follows
//      A_s += alpha (A_r - A_s) (hysteresis).
//
// Decreases pass through the hysteresis unconditionally, which is how Jockey releases
// resources when a job runs ahead of schedule (Fig 6(c)) while the dead zone prevents
// chasing noise upward.

#ifndef SRC_CORE_CONTROL_LOOP_H_
#define SRC_CORE_CONTROL_LOOP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/controller.h"
#include "src/core/amdahl.h"
#include "src/core/decision_cache.h"
#include "src/core/progress.h"
#include "src/obs/observer.h"
#include "src/sim/completion_table.h"
#include "src/util/piecewise_linear.h"

namespace jockey {

class FaultInjector;
struct FaultWindow;

struct ControlLoopConfig {
  // Multiplies every latency prediction: compensates model under-estimation.
  double slack = 1.2;
  // Exponential smoothing coefficient in (0, 1]; 1 disables smoothing.
  double hysteresis_alpha = 0.2;
  // Shift of the utility function; the loop only reacts to increases when the job is
  // at least this far behind schedule. The paper's default is 3 minutes.
  double dead_zone_seconds = 180.0;
  // The quantile of C(p, a) used as "the" prediction. The paper cares about the
  // worst-case completion time, so the default is the maximum observed sample; this
  // pessimism about failures and outliers is the simulator's safety buffer.
  double prediction_quantile = 1.0;
  int min_tokens = 1;
  int max_tokens = 100;
  // Online model-error feedback (the extension Section 5.6 proposes: "we could
  // quickly update the model by running the simulator at runtime, or simply fall back
  // ... once the control loop detects large errors in model predictions"). When
  // enabled, the controller measures how fast the model's remaining-time estimate
  // actually shrinks per second of wall clock at a held allocation; a systematic
  // shortfall (e.g. an input 1.4x larger than training making every task slower)
  // rescales all predictions by the inverse of the estimated speed. Off by default,
  // matching the system the paper evaluated.
  bool enable_model_correction = false;
  double correction_ewma = 0.15;      // smoothing of the speed estimator
  double correction_min_speed = 0.4;  // clamp: at most 2.5x prediction inflation
  // The correction only ever *inflates* predictions (speed clamped at 1): progress
  // faster than modeled is usually spare-capacity luck that can evaporate, so it is
  // not treated as evidence the model is pessimistic.
  double correction_max_speed = 1.0;
  int correction_warmup_ticks = 5;    // ticks before the correction engages
  // Graceful degradation under control-plane faults (fault_plan.h). Off by default:
  // the vanilla controller silently consumes whatever the status reports say, which
  // is the baseline the chaos sweep compares against. When enabled, the controller
  // applies the paper's "be pessimistic under uncertainty" principle to its own
  // inputs: hold briefly under report dropout, escalate toward the maximum when
  // blind for too long, fall back through the estimator chain (frozen table ->
  // Amdahl model -> worst case) when lookups are corrupted, and track *granted*
  // rather than requested tokens when the scheduler shortfalls grants.
  bool enable_degraded_mode = false;
  // Stale reports at most this old hold the last safe allocation; older ones
  // trigger pessimistic escalation.
  double stale_hold_seconds = 150.0;
  // Per-tick fraction of the remaining gap to max_tokens applied while blind.
  double blind_escalation_rate = 0.5;
  // A tick gap exceeding this multiple of the smallest observed gap means control
  // ticks were skipped (blackout); the next decision snaps to raw, skipping
  // hysteresis, to make up the lost ground.
  double blackout_gap_factor = 1.75;
  // EWMA smoothing of the observed granted/requested ratio (grant compensation).
  double grant_ratio_ewma = 0.5;
  // Straggler-aware detection (gray failures: slow-but-alive machines, skewed
  // offline profiles, adversarial load). Each fresh-report tick compares the
  // realized progress rate against the rate the previous tick's prediction
  // implied; realized below this fraction of implied counts as a straggler tick.
  // 0.7 leaves a wide safety margin for healthy runs: predictions use the
  // worst-case quantile, so the implied rate is itself conservative and a
  // healthy job realizes *faster* than implied (ratio > 1). Only a model that
  // has turned optimistic — exactly the gray failures — drops below it.
  double straggler_rate_ratio = 0.7;
  // Consecutive straggler ticks before the controller escalates toward max_tokens
  // (at blind_escalation_rate) — the same pessimism chain the blind path uses.
  // Two periods, not one: a single slow tick is routinely just a barrier stage
  // draining, but two in a row at worst-case-quantile predictions means the
  // model itself has turned optimistic.
  int straggler_min_ticks = 2;
  // Memoize the candidate scan (decision_cache.h): per-progress-bucket prediction
  // columns plus whole-decision reuse while the winner provably stays the scan's
  // answer. Guaranteed to never change a decision — only to skip work — so event
  // streams are byte-identical with this on or off. Off by default.
  bool enable_decision_cache = false;
  // When > 0, the controller starts from this allocation instead of a cold scan:
  // smoothed state is pre-seeded and InitialAllocation() returns it (clamped to
  // [min_tokens, max_tokens]). Recurring runs set it from the previous run's
  // postmortem via WarmStartAllocation (decision_cache.h).
  int warm_start_tokens = 0;
  // The control period the harness drives ticks at, when known (0 = unknown).
  // Blackout detection compares each observed tick gap against a baseline period;
  // learning that baseline purely from observed gaps is vulnerable to a blackout
  // spanning the *first* gap (the inflated gap becomes the baseline and later
  // blackouts of similar size go undetected), so a known period caps the learned
  // baseline from above.
  double control_period_hint_seconds = 0.0;
};

// Empty string when the config is sane; otherwise the first problem found.
// JockeyController's constructors call this and throw std::invalid_argument.
std::string ValidateControlLoopConfig(const ControlLoopConfig& config);

// One control decision, logged for the progress-indicator evaluation (Figs 9/10).
struct ControlTickLog {
  double elapsed_seconds = 0.0;
  double progress = 0.0;
  // T_t: estimated completion time (elapsed + predicted remaining at the current
  // allocation), before slack.
  double estimated_completion_seconds = 0.0;
  double raw_allocation = 0.0;
  double smoothed_allocation = 0.0;
};

// Jockey's allocation policy. With a CompletionTable this is full Jockey; with an
// AmdahlModel it is the "Jockey w/o simulator" baseline.
class JockeyController : public JobController {
 public:
  JockeyController(std::shared_ptr<const ProgressIndicator> indicator,
                   std::shared_ptr<const CompletionTable> table, PiecewiseLinear utility,
                   ControlLoopConfig config);

  JockeyController(std::shared_ptr<const ProgressIndicator> indicator,
                   std::shared_ptr<const AmdahlModel> amdahl, PiecewiseLinear utility,
                   ControlLoopConfig config);

  // Fallback-chain constructor: prefers the table, falls back to the Amdahl model
  // when table lookups are faulted (degraded mode), and to a worst-case linear
  // estimate when neither survives. At least one of table/amdahl must be set.
  JockeyController(std::shared_ptr<const ProgressIndicator> indicator,
                   std::shared_ptr<const CompletionTable> table,
                   std::shared_ptr<const AmdahlModel> amdahl, PiecewiseLinear utility,
                   ControlLoopConfig config);

  ControlDecision OnTick(const JobRuntimeStatus& status) override;

  // The allocation the policy picks before the job starts (progress 0, elapsed 0).
  // "Jockey w/o adaptation" runs the whole job at this fixed value.
  int InitialAllocation() const;

  // Replaces the utility function mid-run; models SLO changes after job submission
  // (Fig 7). Takes effect at the next tick.
  void SetUtility(PiecewiseLinear utility);

  // Schedules a utility replacement once elapsed time reaches `at_elapsed_seconds`.
  void ScheduleUtilityChange(double at_elapsed_seconds, PiecewiseLinear utility);

  const std::vector<ControlTickLog>& log() const { return log_; }
  const ControlLoopConfig& config() const { return config_; }

  // Attaches the observability layer: each tick emits a control_tick trace event
  // (progress, prediction, utility, raw/smoothed/granted allocation) plus the
  // prediction lookup backing it, labelled with `job_label` (the cluster job id in
  // multi-job runs). Default-detached; the disabled path costs one branch per tick.
  void set_observer(Observer observer, int job_label = 0) {
    observer_ = observer;
    job_label_ = job_label;
    // Pre-resolve the per-tick counter slots so a metered tick bumps two plain
    // ints instead of doing two string-keyed map lookups.
    ticks_counter_ = observer_.metering() ? observer_.metrics()->CounterSlot("control.ticks")
                                          : nullptr;
    lookups_counter_ = observer_.metering()
                           ? observer_.metrics()->CounterSlot("control.prediction_lookups")
                           : nullptr;
    cache_hits_counter_ =
        observer_.metering() && config_.enable_decision_cache
            ? observer_.metrics()->CounterSlot("control.decision_cache.hits")
            : nullptr;
    cache_misses_counter_ =
        observer_.metering() && config_.enable_decision_cache
            ? observer_.metrics()->CounterSlot("control.decision_cache.misses")
            : nullptr;
    cache_invalidations_counter_ =
        observer_.metering() && config_.enable_decision_cache
            ? observer_.metrics()->CounterSlot("control.decision_cache.invalidations")
            : nullptr;
  }

  // Decision-cache hit/miss/invalidation counts (all zero when the cache is off).
  const DecisionCacheStats& cache_stats() const { return decision_cache_.stats(); }

  // Current model-speed estimate (1.0 = predictions on track, < 1 = the job runs
  // slower than the model thinks). Meaningful when model correction is enabled.
  double model_speed_estimate() const { return speed_estimate_; }

  // Attaches a fault injector so table-fault windows reach prediction lookups.
  // A naive controller (enable_degraded_mode off) silently consumes the corrupted
  // predictions — modeling an undetected model failure; a hardened one detects the
  // window and walks the fallback chain instead. Must outlive the controller.
  void set_fault_injector(const FaultInjector* injector) { fault_injector_ = injector; }

  // Smoothed granted/requested ratio observed under grant-shortfall windows
  // (1.0 = grants honored in full). Meaningful in degraded mode.
  double grant_ratio_estimate() const { return grant_ratio_; }

 private:
  // Predicted remaining seconds (before slack) at the given progress / fractions.
  double PredictRemaining(double progress, const std::vector<double>& frac_complete,
                          double allocation) const;
  // The raw argmin-of-max-utility allocation.
  int RawAllocation(double elapsed, double progress, const std::vector<double>& frac_complete,
                    const PiecewiseLinear& shifted_utility) const;
  // RawAllocation through the decision cache: serves a memoized winner when provably
  // still valid, otherwise replays the scan arithmetic over a memoized prediction
  // column. Bit-identical to RawAllocation; falls through to it when the cache is
  // off or a fault window makes lookups time-dependent. Sets last_scan_lookups_ to
  // the number of table lookups actually performed.
  int CachedRawAllocation(double elapsed, double progress,
                          const std::vector<double>& frac_complete,
                          const PiecewiseLinear& shifted_utility);
  // Recomputes the cache fingerprint (config + shifted-utility knots + degrade
  // bits) and re-keys the cache; a mismatch drops all cached state.
  void RekeyCache();
  // Pre-seeds smoothed state from config_.warm_start_tokens (no-op when 0).
  void ApplyWarmStart();

  // Updates the model-speed estimator from consecutive observations.
  void UpdateModelSpeed(double elapsed, double progress, const std::vector<double>& frac);

  // Folds the currently-granted tokens against the last request into grant_ratio_
  // (degraded mode only); a persistent shortfall inflates subsequent requests.
  void ObserveGrantRatio(const JobRuntimeStatus& status);

  std::shared_ptr<const ProgressIndicator> indicator_;
  std::shared_ptr<const CompletionTable> table_;  // exactly one of table_/amdahl_ set
  std::shared_ptr<const AmdahlModel> amdahl_;
  PiecewiseLinear utility_;
  // utility_ shifted left by the dead zone, refreshed whenever utility_ changes.
  // Cached so the per-tick query path — a frozen-table Predict per candidate
  // allocation — performs no allocation at all.
  PiecewiseLinear shifted_utility_;
  ControlLoopConfig config_;
  Observer observer_;
  int64_t* ticks_counter_ = nullptr;
  int64_t* lookups_counter_ = nullptr;
  int64_t* cache_hits_counter_ = nullptr;
  int64_t* cache_misses_counter_ = nullptr;
  int64_t* cache_invalidations_counter_ = nullptr;
  int job_label_ = 0;
  // Decision-cache state (enable_decision_cache).
  DecisionCache decision_cache_;
  bool cache_eligible_ = true;      // outside any fault window since the last tick
  int last_scan_lookups_ = 0;       // table lookups the last candidate scan performed
  bool cache_hit_tick_ = false;     // this tick's decision was served from the cache
  uint64_t cache_hit_signature_ = 0;
  double smoothed_ = -1.0;  // < 0 until the first tick
  std::vector<ControlTickLog> log_;
  double pending_change_at_ = -1.0;
  PiecewiseLinear pending_utility_;
  // Model-correction state.
  double speed_estimate_ = 1.0;
  double prev_elapsed_ = -1.0;
  double prev_remaining_ = -1.0;
  double prev_allocation_ = -1.0;
  int ticks_seen_ = 0;
  // Fault-awareness / degraded-mode state.
  const FaultInjector* fault_injector_ = nullptr;
  double tick_now_ = 0.0;            // simulated time of the tick being decided
  bool table_fault_active_ = false;  // table-fault window covers tick_now_
  // profile_skew window covering tick_now_ (nullptr otherwise). Unlike table
  // faults there is no clean path to fall back to — the offline data itself is
  // wrong — so the skew applies to every model rung and hardening relies on the
  // straggler detector below instead.
  const FaultWindow* skew_window_ = nullptr;
  // Straggler-detection state: the last fresh observation and the prediction it
  // came with (reset while reports are blind), plus the consecutive-lag count.
  double straggler_prev_elapsed_ = -1.0;
  double straggler_prev_progress_ = 0.0;
  double straggler_prev_predicted_ = -1.0;
  int straggler_ticks_ = 0;
  // Worst-case total runtime (prediction at min_tokens from a fresh job), the last
  // rung of the fallback chain.
  double worst_case_total_ = 0.0;
  int last_requested_ = -1;
  double last_tick_elapsed_ = -1.0;
  double min_tick_gap_ = -1.0;  // smallest observed tick gap (the control period)
  double grant_ratio_ = 1.0;
};

}  // namespace jockey

#endif  // SRC_CORE_CONTROL_LOOP_H_
