#include "src/core/amdahl.h"

#include <algorithm>
#include <cassert>

namespace jockey {

AmdahlModel::AmdahlModel(const JobGraph& graph, const JobProfile& profile) {
  int s_count = graph.num_stages();
  ls_.resize(static_cast<size_t>(s_count));
  ts_.resize(static_cast<size_t>(s_count));
  for (int s = 0; s < s_count; ++s) {
    ls_[static_cast<size_t>(s)] = profile.stage(s).max_task_seconds;
    ts_[static_cast<size_t>(s)] = profile.stage(s).total_exec_seconds;
  }
  auto inclusive = graph.LongestPathToEnd(ls_);
  suffix_.resize(ls_.size());
  for (size_t s = 0; s < ls_.size(); ++s) {
    suffix_[s] = inclusive[s] - ls_[s];
    s0_ = std::max(s0_, inclusive[s]);
    p0_ += ts_[s];
  }
}

double AmdahlModel::PredictRemaining(const std::vector<double>& frac_complete,
                                     double allocation) const {
  assert(allocation >= 1.0);
  assert(frac_complete.size() == ls_.size());
  double st = 0.0;
  double pt = 0.0;
  for (size_t s = 0; s < ls_.size(); ++s) {
    if (frac_complete[s] < 1.0) {
      st = std::max(st, (1.0 - frac_complete[s]) * ls_[s] + suffix_[s]);
      pt += (1.0 - frac_complete[s]) * ts_[s];
    }
  }
  return st + std::max(0.0, pt - st) / allocation;
}

double AmdahlModel::PredictTotal(double allocation) const {
  assert(allocation >= 1.0);
  return s0_ + std::max(0.0, p0_ - s0_) / allocation;
}

}  // namespace jockey
