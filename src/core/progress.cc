#include "src/core/progress.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/sim/job_simulator.h"

namespace jockey {
namespace {

// totalworkWithQ / totalwork / vertexfrac are all stage-weighted sums of f_s.
class WeightedSumIndicator : public ProgressIndicator {
 public:
  WeightedSumIndicator(IndicatorKind kind, std::vector<double> weights)
      : kind_(kind), weights_(std::move(weights)) {
    total_ = 0.0;
    for (double w : weights_) {
      total_ += w;
    }
  }

  IndicatorKind kind() const override { return kind_; }

  double Evaluate(const std::vector<double>& frac_complete) const override {
    assert(frac_complete.size() == weights_.size());
    if (total_ <= 0.0) {
      return 1.0;
    }
    double sum = 0.0;
    for (size_t s = 0; s < weights_.size(); ++s) {
      sum += frac_complete[s] * weights_[s];
    }
    return std::clamp(sum / total_, 0.0, 1.0);
  }

 private:
  IndicatorKind kind_;
  std::vector<double> weights_;
  double total_;
};

// cp: fraction of the job's critical path no longer remaining. The remaining critical
// path S_t = max over unfinished stages of (1 - f_s) l_s + L_s, where L_s is the
// longest path strictly after stage s (Section 4.1's Amdahl notation).
class CriticalPathIndicator : public ProgressIndicator {
 public:
  CriticalPathIndicator(const JobGraph& graph, const JobProfile& profile) {
    ls_.resize(static_cast<size_t>(graph.num_stages()));
    for (int s = 0; s < graph.num_stages(); ++s) {
      ls_[static_cast<size_t>(s)] = profile.stage(s).max_task_seconds;
    }
    auto inclusive = graph.LongestPathToEnd(ls_);
    suffix_.resize(ls_.size());
    cp0_ = 0.0;
    for (size_t s = 0; s < ls_.size(); ++s) {
      suffix_[s] = inclusive[s] - ls_[s];
      cp0_ = std::max(cp0_, inclusive[s]);
    }
  }

  IndicatorKind kind() const override { return IndicatorKind::kCriticalPath; }

  double Evaluate(const std::vector<double>& frac_complete) const override {
    assert(frac_complete.size() == ls_.size());
    if (cp0_ <= 0.0) {
      return 1.0;
    }
    double remaining = 0.0;
    for (size_t s = 0; s < ls_.size(); ++s) {
      if (frac_complete[s] < 1.0) {
        remaining = std::max(remaining, (1.0 - frac_complete[s]) * ls_[s] + suffix_[s]);
      }
    }
    return std::clamp(1.0 - remaining / cp0_, 0.0, 1.0);
  }

 private:
  std::vector<double> ls_;
  std::vector<double> suffix_;  // L_s: longest path after s
  double cp0_ = 0.0;
};

// minstage / minstage-inf: progress is the stage furthest behind its typical relative
// schedule, min over unfinished stages of tb_s + f_s (te_s - tb_s).
class MinStageIndicator : public ProgressIndicator {
 public:
  MinStageIndicator(IndicatorKind kind, std::vector<double> rel_start, std::vector<double> rel_end)
      : kind_(kind), rel_start_(std::move(rel_start)), rel_end_(std::move(rel_end)) {}

  IndicatorKind kind() const override { return kind_; }

  double Evaluate(const std::vector<double>& frac_complete) const override {
    assert(frac_complete.size() == rel_start_.size());
    double progress = 1.0;
    bool any_unfinished = false;
    for (size_t s = 0; s < rel_start_.size(); ++s) {
      if (frac_complete[s] < 1.0) {
        any_unfinished = true;
        double p = rel_start_[s] + frac_complete[s] * (rel_end_[s] - rel_start_[s]);
        progress = std::min(progress, p);
      }
    }
    if (!any_unfinished) {
      return 1.0;
    }
    return std::clamp(progress, 0.0, 1.0);
  }

 private:
  IndicatorKind kind_;
  std::vector<double> rel_start_;
  std::vector<double> rel_end_;
};

// Relative stage schedules observed in the training trace.
void RelativeTimesFromTrace(const JobGraph& graph, const RunTrace& trace,
                            std::vector<double>* rel_start, std::vector<double>* rel_end) {
  int s_count = graph.num_stages();
  rel_start->assign(static_cast<size_t>(s_count), 0.0);
  rel_end->assign(static_cast<size_t>(s_count), 1.0);
  double duration = trace.CompletionSeconds();
  if (duration <= 0.0) {
    return;
  }
  std::vector<double> first(static_cast<size_t>(s_count), -1.0);
  std::vector<double> last(static_cast<size_t>(s_count), 0.0);
  for (const auto& t : trace.tasks) {
    auto s = static_cast<size_t>(t.id.stage);
    if (first[s] < 0.0 || t.start_time < first[s]) {
      first[s] = t.start_time;
    }
    last[s] = std::max(last[s], t.end_time);
  }
  for (int s = 0; s < s_count; ++s) {
    auto i = static_cast<size_t>(s);
    (*rel_start)[i] = first[i] < 0.0 ? 0.0 : (first[i] - trace.submit_time) / duration;
    (*rel_end)[i] = (last[i] - trace.submit_time) / duration;
  }
}

// Relative stage schedules from an unconstrained (infinite-allocation) simulation.
void RelativeTimesFromSim(const JobGraph& graph, const JobProfile& profile,
                          std::vector<double>* rel_start, std::vector<double>* rel_end) {
  JobSimulatorConfig config;
  config.inject_failures = false;
  JobSimulator sim(graph, profile, config);
  Rng rng(42);
  SimRunResult run = sim.Run(std::max(1, graph.num_tasks()), rng);
  double duration = std::max(1e-9, run.completion_seconds);
  int s_count = graph.num_stages();
  rel_start->resize(static_cast<size_t>(s_count));
  rel_end->resize(static_cast<size_t>(s_count));
  for (int s = 0; s < s_count; ++s) {
    auto i = static_cast<size_t>(s);
    (*rel_start)[i] = std::max(0.0, run.stage_first_start[i]) / duration;
    (*rel_end)[i] = run.stage_last_end[i] / duration;
  }
}

}  // namespace

const char* IndicatorName(IndicatorKind kind) {
  switch (kind) {
    case IndicatorKind::kTotalWorkWithQ:
      return "totalworkWithQ";
    case IndicatorKind::kTotalWork:
      return "totalwork";
    case IndicatorKind::kVertexFrac:
      return "vertexfrac";
    case IndicatorKind::kCriticalPath:
      return "cp";
    case IndicatorKind::kMinStage:
      return "minstage";
    case IndicatorKind::kMinStageInf:
      return "minstage-inf";
  }
  return "unknown";
}

std::unique_ptr<ProgressIndicator> MakeIndicator(IndicatorKind kind, const JobGraph& graph,
                                                 const JobProfile& profile,
                                                 const RunTrace* training_trace) {
  int s_count = graph.num_stages();
  switch (kind) {
    case IndicatorKind::kTotalWorkWithQ: {
      std::vector<double> w(static_cast<size_t>(s_count));
      for (int s = 0; s < s_count; ++s) {
        w[static_cast<size_t>(s)] =
            profile.stage(s).total_exec_seconds + profile.stage(s).total_queue_seconds;
      }
      return std::make_unique<WeightedSumIndicator>(kind, std::move(w));
    }
    case IndicatorKind::kTotalWork: {
      std::vector<double> w(static_cast<size_t>(s_count));
      for (int s = 0; s < s_count; ++s) {
        w[static_cast<size_t>(s)] = profile.stage(s).total_exec_seconds;
      }
      return std::make_unique<WeightedSumIndicator>(kind, std::move(w));
    }
    case IndicatorKind::kVertexFrac: {
      std::vector<double> w(static_cast<size_t>(s_count));
      for (int s = 0; s < s_count; ++s) {
        w[static_cast<size_t>(s)] = static_cast<double>(graph.stage(s).num_tasks);
      }
      return std::make_unique<WeightedSumIndicator>(kind, std::move(w));
    }
    case IndicatorKind::kCriticalPath:
      return std::make_unique<CriticalPathIndicator>(graph, profile);
    case IndicatorKind::kMinStage: {
      std::vector<double> rel_start;
      std::vector<double> rel_end;
      if (training_trace != nullptr) {
        RelativeTimesFromTrace(graph, *training_trace, &rel_start, &rel_end);
      } else {
        // No trace available: fall back to simulated relative times.
        RelativeTimesFromSim(graph, profile, &rel_start, &rel_end);
      }
      return std::make_unique<MinStageIndicator>(kind, std::move(rel_start), std::move(rel_end));
    }
    case IndicatorKind::kMinStageInf: {
      std::vector<double> rel_start;
      std::vector<double> rel_end;
      RelativeTimesFromSim(graph, profile, &rel_start, &rel_end);
      return std::make_unique<MinStageIndicator>(kind, std::move(rel_start), std::move(rel_end));
    }
  }
  return nullptr;
}

}  // namespace jockey
