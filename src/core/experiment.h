// Shared experiment harness for the evaluation benches (Section 5.1's methodology).
//
// A TrainedJob bundles a generated job with the trace of one training execution on
// the cluster and the Jockey model built from it ("We use a single production run of
// these jobs as input to the simulator to pre-compute the completion time
// distribution"). RunExperiment() then executes the job on a fresh shared cluster
// under one of the four policies and reports the paper's metrics: deadline met?, how
// early/late relative to the deadline, and the fraction of the requested allocation
// above the oracle allocation O(T, d) = ceil(T / d).

#ifndef SRC_CORE_EXPERIMENT_H_
#define SRC_CORE_EXPERIMENT_H_

#include <memory>
#include <optional>
#include <string>

#include "src/cluster/cluster_simulator.h"
#include "src/core/jockey.h"
#include "src/fault/fault_plan.h"
#include "src/core/policies.h"
#include "src/obs/observer.h"
#include "src/workload/job_template.h"

namespace jockey {

enum class PolicyKind {
  kJockey,          // simulator table + dynamic adaptation
  kJockeyNoAdapt,   // a-priori allocation from the simulator table, fixed
  kJockeyNoSim,     // Amdahl model + dynamic adaptation
  kMaxAllocation,   // the full experiment slice, fixed
  kFixed,           // caller-specified fixed tokens (used by Fig 8's measurement runs)
};

// Human-readable name, as printed in the paper's tables ("Jockey w/o simulator").
const char* PolicyName(PolicyKind policy);
// Stable wire token ("jockey_no_sim") — what scenario files, CLI flags and JSON
// output use. ParsePolicyKind is its inverse and accepts only wire tokens, so the
// spelling cannot drift between the parsers that share it.
const char* PolicyId(PolicyKind policy);
std::optional<PolicyKind> ParsePolicyKind(const std::string& token);

// Cluster configuration used by the evaluation experiments: ~80% average
// utilization, spare-token redistribution, occasional machine failures.
ClusterConfig DefaultExperimentCluster(uint64_t seed);

struct TrainingOptions {
  int guaranteed_tokens = 40;
  uint64_t seed = 900;
  JockeyConfig jockey;
  // The training execution runs on a cluster with this configuration (a typical day:
  // mean utilization at the default, no overload episodes).
  ClusterConfig cluster = DefaultExperimentCluster(900);
};

struct TrainedJob {
  std::shared_ptr<const JobTemplate> tmpl;
  RunTrace training_trace;
  std::shared_ptr<const Jockey> jockey;

  const std::string& name() const { return tmpl->name(); }
};

// Executes one training run of `tmpl` on the cluster and builds the Jockey model
// from its trace.
TrainedJob TrainJob(JobTemplate tmpl, const TrainingOptions& options = TrainingOptions());

// Mid-run SLO change (Fig 7): at `at_seconds` of elapsed time the deadline becomes
// `new_deadline_seconds`. Constructed values are always valid — the constructor
// throws std::invalid_argument on a negative change time or non-positive deadline,
// the same fail-at-construction convention ClusterSimulator and ControlLoop use.
// "No change" is spelled std::nullopt at the use site, not a sentinel.
struct DeadlineChange {
  DeadlineChange(double at_seconds, double new_deadline_seconds);

  double at_seconds;
  double new_deadline_seconds;
};

// Injected cluster overload (Fig 6(a)): background demand forced to `utilization`
// during [start, start + duration). Validated at construction like DeadlineChange.
struct OverloadEpisode {
  OverloadEpisode(double start_seconds, double duration_seconds, double utilization);

  double start_seconds;
  double duration_seconds;
  double utilization;
};

struct ExperimentOptions {
  double deadline_seconds = 3600.0;
  PolicyKind policy = PolicyKind::kJockey;
  uint64_t seed = 1;
  // Scales task durations; models a run whose input grew relative to training.
  double input_scale = 1.0;
  // When true, an additional seeded log-normal jitter multiplies input_scale; this is
  // Section 2.3's observation that input sizes vary across runs of recurring jobs
  // (and Table 3's runs needing 1.5-2x the training work). Set false for experiments
  // that pin the scale exactly.
  bool jitter_input = true;
  double control_period_seconds = 60.0;
  int max_tokens = 100;
  int fixed_tokens = 10;  // used only by PolicyKind::kFixed
  // When > 0, adaptive policies start from this allocation instead of a cold scan
  // (ControlLoopConfig::warm_start_tokens), and the submission's initial grant is
  // seeded with it too. Recurring runs derive it from the previous run's postmortem
  // via WarmStartAllocation (decision_cache.h). 0 keeps the historical cold start.
  int warm_start_tokens = 0;
  bool use_spare_tokens = true;
  std::optional<DeadlineChange> deadline_change;
  std::optional<OverloadEpisode> overload;
  // Pins the run's mean background demand instead of drawing the per-seed cluster
  // "weather". Scenario phases use this to shape load (ramp/burst/diurnal); unset
  // keeps the historical weather draw, bit-for-bit.
  std::optional<double> background_utilization;
  // Overrides the trained control config (sensitivity experiments). The completion
  // table is unaffected — it depends only on the indicator and the model config.
  std::optional<ControlLoopConfig> control_override;
  // Observability attachment: forwarded to the cluster simulator (scheduler events)
  // and, for adaptive policies, the controller (control-decision events). Detached by
  // default, so instrumented code costs one branch per emission site.
  Observer observer;
  // Fault schedule (fault_plan.h): when set and non-empty, an injector built from it
  // is attached to the cluster and, for adaptive policies, the controller. Shared
  // ownership — the options struct (and anything compiled from it) keeps the plan
  // alive, so data-driven callers can build options and let their plan go out of
  // scope. Whether the controller *reacts* is governed separately by
  // ControlLoopConfig::enable_degraded_mode (via control_override) — the chaos sweep
  // runs the same plan against both settings.
  std::shared_ptr<const FaultPlan> fault_plan;
  // Time-series recorder (obs/timeseries/timeseries.h): when set, RunExperiment
  // opens a new run on it (BeginRun with this run's effective deadline) and attaches
  // it to the cluster, which then feeds it per-control-tick job samples, cluster
  // utilization samples and the job-finish mark. Non-owning; nullptr (the default)
  // records nothing and changes no simulation result.
  TimeSeriesRecorder* timeseries = nullptr;
  // When true, every trace event of the run is returned in ExperimentResult::events
  // (in addition to whatever `observer` sink is attached) — the input the postmortem
  // analyzer (obs/analysis/postmortem.h) wants without round-tripping JSONL.
  bool capture_events = false;
  // Event-queue engine for the experiment cluster. The engine-differential test
  // runs the same seeded experiment on both and asserts byte-identical traces.
  EventEngine event_engine = EventEngine::kCalendar;
};

struct ExperimentResult {
  std::string job_name;
  PolicyKind policy = PolicyKind::kJockey;
  double deadline_seconds = 0.0;
  double completion_seconds = 0.0;
  bool met_deadline = false;
  // completion / deadline; < 1 met the SLO, > 1 missed it (the x-axis of Fig 5).
  double latency_ratio = 0.0;
  // Aggregate CPU seconds actually consumed by the run (T in O(T, d)).
  double total_work_seconds = 0.0;
  int oracle_tokens = 0;
  // Integral of the guaranteed-token request, token-seconds.
  double requested_token_seconds = 0.0;
  // max(0, requested - oracle) / requested; the x-axis of Fig 4.
  double frac_above_oracle = 0.0;
  ClusterRunResult run;
  // Jockey-family policies: the per-tick control log (progress, T_t, allocations).
  std::vector<ControlTickLog> control_log;
  // The run's full trace, filled when ExperimentOptions::capture_events is true
  // (empty otherwise).
  std::vector<TraceEvent> events;
};

ExperimentResult RunExperiment(const TrainedJob& job, const ExperimentOptions& options);

// Deadline derivation following Section 2.2 / 5.1: "we set the target deadline based
// on the length of the critical path". The short deadline leaves headroom above the
// trained critical path and the observed training completion; the long deadline is
// twice the short one, rounded up to whole minutes.
double SuggestDeadlineSeconds(const TrainedJob& job, bool tight);

}  // namespace jockey

#endif  // SRC_CORE_EXPERIMENT_H_
