#include "src/core/admission.h"

#include <algorithm>

namespace jockey {

AdmissionController::AdmissionController(int total_tokens) : total_tokens_(total_tokens) {}

int AdmissionController::PeakReserved(SimTime start, SimTime end) const {
  // Sweep over reservation boundaries inside [start, end). Reservation counts are
  // small (one per admitted SLO job), so the quadratic sweep is fine.
  std::vector<SimTime> points = {start};
  for (const auto& r : reservations_) {
    if (r.start > start && r.start < end) {
      points.push_back(r.start);
    }
  }
  int peak = 0;
  for (SimTime t : points) {
    int active = 0;
    for (const auto& r : reservations_) {
      if (r.start <= t && t < r.end) {
        active += r.tokens;
      }
    }
    peak = std::max(peak, active);
  }
  return peak;
}

AdmissionDecision AdmissionController::Admit(const std::string& job_name, const Jockey& model,
                                             SimTime now, double deadline_seconds) {
  AdmissionDecision decision;
  SimTime end = now + deadline_seconds;
  int available = total_tokens_ - PeakReserved(now, end);
  if (available < 1) {
    decision.reason = "no guaranteed tokens available in the deadline window";
    return decision;
  }
  // Minimum reservation whose slack-adjusted worst-case prediction meets the
  // deadline. WouldFit is monotone in tokens, so scan upward.
  for (int tokens = 1; tokens <= available; ++tokens) {
    if (model.WouldFit(deadline_seconds, tokens)) {
      decision.admitted = true;
      decision.reserved_tokens = tokens;
      reservations_.push_back(Reservation{job_name, now, end, tokens});
      return decision;
    }
  }
  decision.reason = model.WouldFit(deadline_seconds, total_tokens_)
                        ? "the job fits alone but not alongside existing reservations"
                        : "deadline infeasible even with the whole budget";
  return decision;
}

void AdmissionController::ReleaseExpired(SimTime now) {
  reservations_.erase(
      std::remove_if(reservations_.begin(), reservations_.end(),
                     [now](const Reservation& r) { return r.end <= now; }),
      reservations_.end());
}

void AdmissionController::Release(const std::string& job_name) {
  reservations_.erase(
      std::remove_if(reservations_.begin(), reservations_.end(),
                     [&](const Reservation& r) { return r.job_name == job_name; }),
      reservations_.end());
}

}  // namespace jockey
