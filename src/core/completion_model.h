// Offline estimation of C(p, a) (Section 4.1, "Job simulator and the offline
// estimation").
//
// BuildCompletionTable() repeatedly simulates the job at every allocation on the grid
// with Jockey's offline job simulator. During each simulated run, the progress
// indicator is evaluated on the per-stage completion fractions at a fixed sampling
// period, and each (progress, allocation, remaining-time) observation becomes one
// sample of C(p, a). The resulting table is what the runtime control loop queries —
// the simulator itself is never invoked online (the paper's key engineering choice
// for a fast control loop).

#ifndef SRC_CORE_COMPLETION_MODEL_H_
#define SRC_CORE_COMPLETION_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/core/progress.h"
#include "src/dag/job_graph.h"
#include "src/dag/profile.h"
#include "src/sim/completion_table.h"
#include "src/sim/job_simulator.h"

namespace jockey {

struct CompletionModelConfig {
  // Token grid simulated offline; runtime queries interpolate between grid points.
  std::vector<int> allocation_grid = {2, 5, 10, 15, 20, 25, 30, 40, 50, 60, 70, 80, 90, 100};
  // Monte Carlo runs per grid allocation.
  int runs_per_allocation = 10;
  int num_progress_buckets = 60;
  JobSimulatorConfig simulator;
  uint64_t seed = 7;
};

CompletionTable BuildCompletionTable(const JobGraph& graph, const JobProfile& profile,
                                     const ProgressIndicator& indicator,
                                     const CompletionModelConfig& config = CompletionModelConfig());

}  // namespace jockey

#endif  // SRC_CORE_COMPLETION_MODEL_H_
