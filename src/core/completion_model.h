// Offline estimation of C(p, a) (Section 4.1, "Job simulator and the offline
// estimation").
//
// BuildCompletionTable() repeatedly simulates the job at every allocation on the grid
// with Jockey's offline job simulator. During each simulated run, the progress
// indicator is evaluated on the per-stage completion fractions at a fixed sampling
// period, and each (progress, allocation, remaining-time) observation becomes one
// sample of C(p, a). The resulting table is what the runtime control loop queries —
// the simulator itself is never invoked online (the paper's key engineering choice
// for a fast control loop).
//
// The (allocation, run) pairs are mutually independent, so the builder fans them
// across a thread pool. Determinism contract: every run draws from an Rng seeded by
// Rng::CounterSeed(config.seed, alloc_index, run) — a pure function of the run's
// coordinates — and each run's samples land in a private buffer merged in (alloc,
// run) order afterwards. Parallel and serial builds therefore produce bit-identical
// tables for any thread count and any interleaving; a regression test asserts the
// serialized bytes match. The returned table is already frozen (see
// completion_table.h), so Predict is O(1) and thread-safe.
//
// With `cache_dir` set, the builder first consults the persistent cache under a key
// derived from (graph, profile, indicator, config) — recurring workloads re-training
// the same job skip the ~140 simulations entirely on a warm start.

#ifndef SRC_CORE_COMPLETION_MODEL_H_
#define SRC_CORE_COMPLETION_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/progress.h"
#include "src/obs/observer.h"
#include "src/dag/job_graph.h"
#include "src/dag/profile.h"
#include "src/sim/completion_table.h"
#include "src/sim/job_simulator.h"

namespace jockey {

struct CompletionModelConfig {
  // Token grid simulated offline; runtime queries interpolate between grid points.
  std::vector<int> allocation_grid = {2, 5, 10, 15, 20, 25, 30, 40, 50, 60, 70, 80, 90, 100};
  // Monte Carlo runs per grid allocation.
  int runs_per_allocation = 10;
  int num_progress_buckets = 60;
  JobSimulatorConfig simulator;
  uint64_t seed = 7;
  // Worker threads for the precompute fan-out. 0 = hardware concurrency; 1 = the
  // legacy serial path. Any value yields bit-identical tables (see above), so this
  // knob never needs to appear in cache keys or experiment configs.
  int threads = 0;
  // Directory of the persistent frozen-table cache; empty disables caching.
  std::string cache_dir;
  // Total .cpa bytes the cache directory may hold; 0 = unbounded. When exceeded,
  // least-recently-used entries are evicted after each store (see table_cache.h).
  uint64_t cache_max_bytes = 0;
  // Extra entropy folded into the cache key by callers whose indicator depends on
  // inputs the key cannot see directly (e.g. the minstage indicators bake in the
  // training trace); 0 when unused.
  uint64_t cache_extra_tag = 0;
  // Receives cache-traffic trace events and build counters. Never part of the cache
  // key. Emission happens only outside the threaded fan-out, so traces stay
  // bit-identical at any thread count.
  Observer observer;
};

// Diagnostics of one build, reported to callers that care (CLI, benches).
struct CompletionModelBuildStats {
  bool cache_hit = false;
  // Why the cache did (not) serve this build: kHit, kMiss, kCorrupt, kIoError, or
  // kDisabled when no cache directory was configured.
  CacheCode cache_code = CacheCode::kDisabled;
  int threads_used = 1;
  int simulated_runs = 0;  // 0 on a cache hit: no simulation happened
};

// The cache key for a build with these exact inputs. Pure: identical inputs hash
// identically across processes, which is what makes the on-disk cache useful for
// recurring jobs. `threads` is excluded by design.
uint64_t CompletionTableCacheKey(const JobGraph& graph, const JobProfile& profile,
                                 const ProgressIndicator& indicator,
                                 const CompletionModelConfig& config);

CompletionTable BuildCompletionTable(const JobGraph& graph, const JobProfile& profile,
                                     const ProgressIndicator& indicator,
                                     const CompletionModelConfig& config = CompletionModelConfig(),
                                     CompletionModelBuildStats* stats = nullptr);

}  // namespace jockey

#endif  // SRC_CORE_COMPLETION_MODEL_H_
