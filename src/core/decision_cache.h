// Control-plane decision caching (the ROADMAP's "Execution Templates for the
// controller" item). Recurring jobs re-run the same DAG daily, yet the control loop
// and the multi-job arbiter recompute every allocation decision from scratch — at
// fleet scale the candidate scan itself (one table lookup per candidate allocation
// per managed job per tick) becomes the hot path. This cache memoizes that work at
// two levels, under one hard rule: *the cache may only skip work, never change a
// decision*. Every checked-in scenario must produce a byte-identical event stream
// with caching on and off (tests/scenario/decision_cache_differential_test.cc).
//
// Level 1 — prediction columns. CompletionTable::Predict(p, a, q) depends on p only
// through its progress bucket (CompletionTable::BucketIndex), so the column of raw
// predictions over the integer scan range is memoized per bucket and replayed
// through the exact same downstream arithmetic as an uncached scan. Bit-identical
// by construction.
//
// Level 2 — whole decisions. The scan's winner is memoized per bucket and served
// again without rescanning while it is *provably* still what the scan would pick.
// The proof rides on the shape every utility here has: a left plateau at the
// maximum followed by a non-increasing tail (deadline utilities are flat until the
// deadline, then fall). While the winner's slack-adjusted completion estimate stays
// on the plateau, its utility is pinned at the maximum; and since utility is
// non-increasing in elapsed time, every candidate that lost by a clear margin keeps
// losing as time advances. Validity is therefore: same fingerprint (config + utility
// knots), same progress bucket, elapsed no earlier than when the decision was made,
// and the winner's estimate still inside the plateau. The margins below
// (kPlateauWinnerSlop / kPlateauPrefixGuard) cover piecewise-linear interpolation
// rounding, which AnalyzePlateau bounds by capping the utility magnitude it accepts.
//
// Level 2 must be bypassed whenever the scan's arithmetic is not a pure function of
// (bucket, elapsed): model correction (speed_estimate_ can rise), table-fault and
// profile-skew windows (lookups are corrupted in time-dependent ways). Level 1 is
// bypassed under fault windows too — the cached values are *healthy* lookups.
//
// Warm starting extends the same idea across runs: WarmStartAllocation inverts the
// deadline bound from the previous run's postmortem (realized critical path and
// total work) into the initial token grant, so a recurring run's controller starts
// where the last run ended up instead of re-deriving it from a cold scan.

#ifndef SRC_CORE_DECISION_CACHE_H_
#define SRC_CORE_DECISION_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/util/piecewise_linear.h"

namespace jockey {

// Hit/miss/invalidation counts; exposed through JockeyController::cache_stats(),
// MultiJobArbiter::cache_stats() and the control.decision_cache.* metrics.
struct DecisionCacheStats {
  int64_t column_hits = 0;
  int64_t column_misses = 0;
  int64_t decision_hits = 0;
  int64_t decision_misses = 0;
  int64_t invalidations = 0;
  int64_t bypasses = 0;  // ticks where a fault window forced the uncached path
};

// Shape summary of a (dead-zone-shifted) utility function, as needed by the level-2
// validity rule: `usable` iff the function has >= 2 knots, non-increasing knot
// values (so the left plateau is the global maximum and utility never recovers as
// time passes) and magnitude within the rounding-analysis cap below. `plateau_end`
// is the largest x still worth `max_utility` (+inf for a constant function).
struct UtilityPlateau {
  bool usable = false;
  double max_utility = 0.0;
  double plateau_end = 0.0;
  double max_abs_utility = 0.0;
};

UtilityPlateau AnalyzePlateau(const PiecewiseLinear& shifted_utility);

// Level-2 margins. PiecewiseLinear interpolation computes y0*(1-f) + y1*f, which on
// a flat plateau segment is within a few ulps of the plateau value rather than
// exactly equal to it. With knot magnitudes capped at kPlateauMaxMagnitude (1e4;
// AnalyzePlateau rejects larger), the absolute evaluation error near the maximum is
// below ~1e-10. A memoized winner is therefore only stored when every earlier
// candidate lost by kPlateauPrefixGuard — far more than the scan's own 1e-9
// tie-break epsilon plus twice the rounding bound — which keeps the stored winner
// the scan's answer at any later eligible tick.
inline constexpr double kPlateauMaxMagnitude = 1e4;
inline constexpr double kPlateauWinnerSlop = 1e-10;
inline constexpr double kPlateauPrefixGuard = 4e-9;

// The bound the paper's oracle allocates against, inverted: given the previous
// run's realized critical path and total work (both from the postmortem) and the
// deadline, the smallest token count whose ideal completion-time bound
// cp + (total_work - cp) / tokens meets the deadline, clamped to [min, max]. Used
// to seed a recurring run's controller (ControlLoopConfig::warm_start_tokens).
int WarmStartAllocation(double critical_path_seconds, double total_work_seconds,
                        double deadline_seconds, int min_tokens, int max_tokens);

// Per-controller (or per-arbiter-job) memo. Not thread-safe; owned by a controller
// that is itself single-threaded per run.
class DecisionCache {
 public:
  struct Decision {
    int raw = 0;               // the scan's winning allocation
    double prediction = 0.0;   // raw (uncorrected) table prediction at `raw`
    double made_at_elapsed = 0.0;
  };

  // Re-keys the cache to a new (config, utility) fingerprint. A changed fingerprint
  // drops all columns and decisions (counted as an invalidation when anything was
  // cached); an unchanged one is a no-op. Returns true when state was dropped.
  bool Rekey(uint64_t fingerprint, int num_buckets, const UtilityPlateau& plateau);

  uint64_t fingerprint() const { return fingerprint_; }
  const UtilityPlateau& plateau() const { return plateau_; }

  // The memoized prediction column for `bucket`, or nullptr. Columns store raw
  // table predictions for each integer allocation in the scan range, in scan order.
  const std::vector<double>* FindColumn(int bucket) const;
  const std::vector<double>& StoreColumn(int bucket, std::vector<double> column);

  // The memoized decision for `bucket` if it provably still is what the scan would
  // return at `elapsed` (see the level-2 rule above): the decision was made no
  // later than `elapsed`, and `elapsed + slack * prediction` — computed exactly as
  // the scan computes the winner's utility argument — is still on the plateau.
  const Decision* FindDecision(int bucket, double elapsed, double slack) const;
  void StoreDecision(int bucket, const Decision& decision);

  // Drops memoized decisions but keeps prediction columns (raw table values stay
  // valid across utility changes and fault windows). Counted as an invalidation
  // when any decision was present. Returns true when state was dropped.
  bool InvalidateDecisions();

  // Trace-event signature of a served decision: fingerprint chained with bucket.
  uint64_t SignatureFor(int bucket) const;

  DecisionCacheStats& stats() { return stats_; }
  const DecisionCacheStats& stats() const { return stats_; }

 private:
  uint64_t fingerprint_ = 0;
  UtilityPlateau plateau_;
  std::vector<std::vector<double>> columns_;  // empty vector == absent
  std::vector<Decision> decisions_;
  std::vector<char> has_decision_;
  DecisionCacheStats stats_;
};

}  // namespace jockey

#endif  // SRC_CORE_DECISION_CACHE_H_
