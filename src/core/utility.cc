#include "src/core/utility.h"

namespace jockey {

PiecewiseLinear DeadlineUtility(double deadline_seconds) {
  return PiecewiseLinear({{0.0, 1.0},
                          {deadline_seconds, 1.0},
                          {deadline_seconds + 600.0, -1.0},
                          {deadline_seconds + 60000.0, -1000.0}});
}

PiecewiseLinear SoftDeadlineUtility(double deadline_seconds, double grace_seconds) {
  return PiecewiseLinear({{0.0, 1.0},
                          {deadline_seconds, 1.0},
                          {deadline_seconds + grace_seconds, 0.0},
                          {deadline_seconds + 10.0 * grace_seconds, -1.0}});
}

}  // namespace jockey
