#include "src/fault/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jockey {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), noise_rng_(plan_.seed()) {
  const std::string problem = plan_.Validate();
  if (!problem.empty()) {
    throw std::invalid_argument("FaultPlan: " + problem);
  }
  for (const FaultWindow& w : plan_.windows()) {
    if (w.kind == FaultKind::kReportDropout || w.kind == FaultKind::kReportStale ||
        w.kind == FaultKind::kReportNoise) {
      has_report_faults_ = true;
      break;
    }
  }
}

const FaultWindow* FaultInjector::Active(FaultKind kind, double now, int job) const {
  for (const FaultWindow& w : plan_.windows()) {
    if (w.kind == kind && w.Contains(now) && w.AppliesTo(job)) {
      return &w;
    }
  }
  return nullptr;
}

int FaultInjector::IndexOf(const FaultWindow& window) const {
  return static_cast<int>(&window - plan_.windows().data());
}

int FaultInjector::ShortfallGrant(const FaultWindow& window, int requested) {
  if (requested <= 0) return 0;
  return std::max(0, static_cast<int>(std::floor(requested * window.magnitude)));
}

double FaultInjector::PerturbFraction(const FaultWindow& window, double frac) {
  const double noisy = frac * (1.0 + noise_rng_.Normal(0.0, window.magnitude));
  return std::clamp(noisy, 0.0, 1.0);
}

bool FaultInjector::TableFaultActive(double now) const {
  return Active(FaultKind::kTableFault, now) != nullptr;
}

double FaultInjector::CorruptPrediction(double now, double healthy) const {
  const FaultWindow* w = Active(FaultKind::kTableFault, now);
  return w != nullptr ? healthy * w->magnitude : healthy;
}

std::vector<const FaultWindow*> FaultInjector::WindowsOfKind(FaultKind kind) const {
  std::vector<const FaultWindow*> out;
  for (const FaultWindow& w : plan_.windows()) {
    if (w.kind == kind) out.push_back(&w);
  }
  return out;
}

const FaultWindow* FaultInjector::DominantWindow(double start, double end) const {
  const FaultWindow* best = nullptr;
  double best_overlap = 0.0;
  for (const FaultWindow& w : plan_.windows()) {
    const double overlap =
        std::min(end, w.end_seconds) - std::max(start, w.start_seconds);
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = &w;
    }
  }
  return best;
}

}  // namespace jockey
