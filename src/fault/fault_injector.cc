#include "src/fault/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace jockey {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), noise_rng_(plan_.seed()) {
  const std::string problem = plan_.Validate();
  if (!problem.empty()) {
    throw std::invalid_argument("FaultPlan: " + problem);
  }
  constexpr double kNever = std::numeric_limits<double>::infinity();
  slowdown_start_ = skew_start_ = spike_start_ = kNever;
  for (const FaultWindow& w : plan_.windows()) {
    switch (w.kind) {
      case FaultKind::kReportDropout:
      case FaultKind::kReportStale:
      case FaultKind::kReportNoise:
        has_report_faults_ = true;
        break;
      case FaultKind::kMachineSlowdown:
        slowdown_start_ = std::min(slowdown_start_, w.start_seconds);
        break;
      case FaultKind::kProfileSkew:
        has_profile_skew_ = true;
        skew_start_ = std::min(skew_start_, w.start_seconds);
        break;
      case FaultKind::kAdversarialSpike:
        has_spikes_ = true;
        spike_start_ = std::min(spike_start_, w.start_seconds);
        break;
      default:
        break;
    }
  }
  // Gray-failure randomness is frozen here, on streams forked off the plan seed —
  // never drawn at injection time — so two injectors built from the same plan are
  // interchangeable and lookups stay pure (the bit-identical-rerun contract).
  if (has_profile_skew_) {
    Rng shape_rng(plan_.seed() * 0x9E3779B97F4A7C15ULL + 0x5F);
    for (double& s : skew_shape_) {
      s = 0.25 + 0.75 * shape_rng.Uniform();
    }
  }
  if (has_spikes_) {
    Rng phase_rng(plan_.seed() * 0xBF58476D1CE4E5B9ULL + 0xAD);
    spike_phase_.assign(plan_.windows().size(), 0.0);
    for (size_t i = 0; i < plan_.windows().size(); ++i) {
      const FaultWindow& w = plan_.windows()[i];
      if (w.kind == FaultKind::kAdversarialSpike) {
        spike_phase_[i] = phase_rng.Uniform() * w.period_seconds;
      }
    }
  }
}

const FaultWindow* FaultInjector::Active(FaultKind kind, double now, int job) const {
  for (const FaultWindow& w : plan_.windows()) {
    if (w.kind == kind && w.Contains(now) && w.AppliesTo(job)) {
      return &w;
    }
  }
  return nullptr;
}

int FaultInjector::IndexOf(const FaultWindow& window) const {
  return static_cast<int>(&window - plan_.windows().data());
}

int FaultInjector::ShortfallGrant(const FaultWindow& window, int requested) {
  if (requested <= 0) return 0;
  return std::max(0, static_cast<int>(std::floor(requested * window.magnitude)));
}

double FaultInjector::PerturbFraction(const FaultWindow& window, double frac) {
  const double noisy = frac * (1.0 + noise_rng_.Normal(0.0, window.magnitude));
  return std::clamp(noisy, 0.0, 1.0);
}

bool FaultInjector::TableFaultActive(double now) const {
  return Active(FaultKind::kTableFault, now) != nullptr;
}

double FaultInjector::CorruptPrediction(double now, double healthy) const {
  const FaultWindow* w = Active(FaultKind::kTableFault, now);
  return w != nullptr ? healthy * w->magnitude : healthy;
}

double FaultInjector::SlowdownFactor(double now, int machine) const {
  if (now < slowdown_start_) {
    return 1.0;
  }
  double factor = 1.0;
  for (const FaultWindow& w : plan_.windows()) {
    if (w.kind == FaultKind::kMachineSlowdown && w.Contains(now) &&
        w.CoversMachine(machine)) {
      factor *= w.magnitude;
    }
  }
  return factor;
}

const FaultWindow* FaultInjector::ProfileSkewWindow(double now) const {
  if (now < skew_start_) {
    return nullptr;
  }
  return Active(FaultKind::kProfileSkew, now);
}

double FaultInjector::SkewPrediction(const FaultWindow& window, double progress,
                                     double healthy) const {
  const int decile = std::clamp(static_cast<int>(progress * 10.0), 0, 9);
  return healthy * (1.0 - window.magnitude * skew_shape_[static_cast<size_t>(decile)]);
}

double FaultInjector::SpikeBoost(double now) const {
  if (now < spike_start_) {
    return 0.0;
  }
  double boost = 0.0;
  for (size_t i = 0; i < plan_.windows().size(); ++i) {
    const FaultWindow& w = plan_.windows()[i];
    if (w.kind != FaultKind::kAdversarialSpike || !w.Contains(now)) {
      continue;
    }
    const double t = now - w.start_seconds + spike_phase_[i];
    if (std::fmod(t, w.period_seconds) < 0.5 * w.period_seconds) {
      boost += w.magnitude;
    }
  }
  return boost;
}

std::vector<const FaultWindow*> FaultInjector::WindowsOfKind(FaultKind kind) const {
  std::vector<const FaultWindow*> out;
  for (const FaultWindow& w : plan_.windows()) {
    if (w.kind == kind) out.push_back(&w);
  }
  return out;
}

const FaultWindow* FaultInjector::DominantWindow(double start, double end) const {
  const FaultWindow* best = nullptr;
  double best_overlap = 0.0;
  for (const FaultWindow& w : plan_.windows()) {
    const double overlap =
        std::min(end, w.end_seconds) - std::max(start, w.start_seconds);
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = &w;
    }
  }
  return best;
}

}  // namespace jockey
