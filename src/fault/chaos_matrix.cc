#include "src/fault/chaos_matrix.h"

#include <algorithm>

namespace jockey {

std::vector<ChaosClass> BuildChaosMatrix(double deadline_seconds, int num_machines) {
  const double d = deadline_seconds;
  std::vector<ChaosClass> matrix;
  matrix.push_back({"report_dropout",
                    FaultPlan().Add(FaultPlan::ReportDropout(0.25 * d, 0.95 * d))});
  matrix.push_back({"report_stale",
                    FaultPlan().Add(FaultPlan::ReportStale(0.25 * d, 0.95 * d, 0.3 * d))});
  matrix.push_back({"report_noise",
                    FaultPlan().Add(FaultPlan::ReportNoise(0.15 * d, 0.95 * d, 0.35))});
  matrix.push_back({"control_blackout",
                    FaultPlan().Add(FaultPlan::ControlBlackout(0.3 * d, 0.9 * d))});
  matrix.push_back({"grant_shortfall",
                    FaultPlan().Add(FaultPlan::GrantShortfall(0.15 * d, 0.95 * d, 0.45))});
  matrix.push_back({"table_fault",
                    FaultPlan().Add(FaultPlan::TableFault(0.1 * d, 0.9 * d, 0.15))});
  matrix.push_back({"machine_burst",
                    FaultPlan().Add(FaultPlan::MachineBurst(
                        0.3 * d, 0.8 * d, 0, std::max(1, num_machines * 3 / 10)))});
  // Gray failures (appended to keep the matrix order stable): partial degradation
  // rather than crash-style breakage. Slow-but-alive machines from early on; an
  // offline profile that is wrong for the whole run; load spikes phase-locked to
  // the default 60 s control period.
  matrix.push_back({"machine_slowdown",
                    FaultPlan().Add(FaultPlan::MachineSlowdown(
                        0.1 * d, d, 3.0, 0, std::max(1, num_machines * 4 / 10)))});
  matrix.push_back({"profile_skew",
                    FaultPlan().Add(FaultPlan::ProfileSkew(0.0, 2.0 * d, 0.6))});
  matrix.push_back({"adversarial_spike",
                    FaultPlan().Add(FaultPlan::AdversarialSpike(0.05 * d, d, 0.5, 60.0))});
  return matrix;
}

std::vector<std::string> ChaosClassNames() {
  std::vector<std::string> names;
  // Scale does not matter for the names; 1.0/1 keeps the build cheap.
  for (const ChaosClass& entry : BuildChaosMatrix(1.0, 1)) {
    names.push_back(entry.name);
  }
  return names;
}

std::optional<FaultPlan> BuildChaosClassPlan(const std::string& name, double deadline_seconds,
                                             int num_machines) {
  for (ChaosClass& entry : BuildChaosMatrix(deadline_seconds, num_machines)) {
    if (entry.name == name) {
      return std::move(entry.plan);
    }
  }
  return std::nullopt;
}

}  // namespace jockey
