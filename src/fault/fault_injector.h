// Runtime evaluation of a FaultPlan.
//
// The injector is the single object the simulator, controller and table cache hold
// (as a nullable pointer) to decide, at each injection site, whether a fault is
// active *now* and what it does. It owns the plan plus the one piece of mutable
// state faults need: the seeded noise stream for report_noise windows. Everything
// else is a pure lookup over the plan's windows, so two injectors built from the
// same plan behave identically and seeded runs stay byte-reproducible.

#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <vector>

#include "src/fault/fault_plan.h"
#include "src/util/rng.h"

namespace jockey {

class FaultInjector {
 public:
  // Throws std::invalid_argument when the plan fails FaultPlan::Validate() —
  // injection sites never re-check window sanity.
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  bool empty() const { return plan_.empty(); }
  // Precomputed: does any window touch progress reports (dropout/stale/noise)?
  // Lets the simulator skip report-history bookkeeping entirely otherwise.
  bool HasReportFaults() const { return has_report_faults_; }

  // First window of `kind` covering simulated time `now` (and applying to `job`
  // when the kind is job-scoped), or nullptr. Linear scan: plans are tens of
  // windows at most, and the detached case never reaches here.
  const FaultWindow* Active(FaultKind kind, double now, int job = -1) const;

  // Index of a window returned by Active() within plan().windows(), for the
  // `window` field of fault_injected events.
  int IndexOf(const FaultWindow& window) const;

  // Tokens actually granted under a grant_shortfall window.
  static int ShortfallGrant(const FaultWindow& window, int requested);

  // Applies seeded multiplicative noise to a completed fraction (report_noise).
  // Mutates the injector's noise stream; call once per perturbed value.
  double PerturbFraction(const FaultWindow& window, double frac);

  bool TableFaultActive(double now) const;
  // healthy * corruption factor when a table_fault window covers `now`; healthy
  // otherwise. This is what a *non-hardened* consumer silently reads.
  double CorruptPrediction(double now, double healthy) const;

  std::vector<const FaultWindow*> WindowsOfKind(FaultKind kind) const;

  // The window with the largest overlap of [start, end), any kind — used by the
  // chaos report to attribute a deadline miss to the fault that caused it.
  const FaultWindow* DominantWindow(double start, double end) const;

 private:
  FaultPlan plan_;
  Rng noise_rng_;
  bool has_report_faults_ = false;
};

}  // namespace jockey

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
