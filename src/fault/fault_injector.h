// Runtime evaluation of a FaultPlan.
//
// The injector is the single object the simulator, controller and table cache hold
// (as a nullable pointer) to decide, at each injection site, whether a fault is
// active *now* and what it does. It owns the plan plus the one piece of mutable
// state faults need: the seeded noise stream for report_noise windows. Everything
// else is a pure lookup over the plan's windows, so two injectors built from the
// same plan behave identically and seeded runs stay byte-reproducible.

#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/util/rng.h"

namespace jockey {

class FaultInjector {
 public:
  // Throws std::invalid_argument when the plan fails FaultPlan::Validate() —
  // injection sites never re-check window sanity.
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  bool empty() const { return plan_.empty(); }
  // Precomputed: does any window touch progress reports (dropout/stale/noise)?
  // Lets the simulator skip report-history bookkeeping entirely otherwise.
  bool HasReportFaults() const { return has_report_faults_; }

  // First window of `kind` covering simulated time `now` (and applying to `job`
  // when the kind is job-scoped), or nullptr. Linear scan: plans are tens of
  // windows at most, and the detached case never reaches here.
  const FaultWindow* Active(FaultKind kind, double now, int job = -1) const;

  // Index of a window returned by Active() within plan().windows(), for the
  // `window` field of fault_injected events.
  int IndexOf(const FaultWindow& window) const;

  // Tokens actually granted under a grant_shortfall window.
  static int ShortfallGrant(const FaultWindow& window, int requested);

  // Applies seeded multiplicative noise to a completed fraction (report_noise).
  // Mutates the injector's noise stream; call once per perturbed value.
  double PerturbFraction(const FaultWindow& window, double frac);

  bool TableFaultActive(double now) const;
  // healthy * corruption factor when a table_fault window covers `now`; healthy
  // otherwise. This is what a *non-hardened* consumer silently reads.
  double CorruptPrediction(double now, double healthy) const;

  // Gray failures. Each helper front-loads a precomputed per-kind earliest start
  // time, so an injector whose plan carries none of that kind — or only windows
  // that have not begun yet — costs one load + compare per call. These helpers
  // sit on the cluster's per-dispatch hot path, inside the BENCH_fault budget.
  //
  // Product of the slowdown factors of every machine_slowdown window covering
  // (`now`, `machine`); 1.0 when none do. Applied to attempt service times.
  double SlowdownFactor(double now, int machine) const;

  // profile_skew: the offline training traces were corrupted, so the C(p, a) table
  // itself is biased — *every* consumer reads skewed predictions (unlike
  // table_fault, there is no healthy lookup path to fall back to). The per-decile
  // skew shape is seeded and frozen at construction; a window's magnitude scales
  // it. Skew is optimistic (predictions shrink), the direction that costs
  // deadlines.
  const FaultWindow* ProfileSkewWindow(double now) const;
  // healthy * (1 - magnitude * shape[decile(progress)]) for the given window.
  double SkewPrediction(const FaultWindow& window, double progress, double healthy) const;

  // Sum of the boosts of every adversarial_spike window covering `now` that is in
  // its on-phase (the first half of each period, shifted by a per-window seeded
  // phase offset); 0.0 otherwise. Added to background utilization.
  double SpikeBoost(double now) const;

  std::vector<const FaultWindow*> WindowsOfKind(FaultKind kind) const;

  // The window with the largest overlap of [start, end), any kind — used by the
  // chaos report to attribute a deadline miss to the fault that caused it.
  const FaultWindow* DominantWindow(double start, double end) const;

 private:
  FaultPlan plan_;
  Rng noise_rng_;
  bool has_report_faults_ = false;
  // Earliest start among windows of each gray kind; +inf when the plan has none.
  // A lookup at now < start can return the detached answer immediately.
  double slowdown_start_ = 0.0;
  double skew_start_ = 0.0;
  double spike_start_ = 0.0;
  bool has_profile_skew_ = false;
  bool has_spikes_ = false;
  // Unit skew shape per progress decile, drawn once from the plan seed; each
  // profile_skew window scales it by its magnitude. In [0.25, 1] so every decile
  // is meaningfully skewed and the bias never vanishes.
  std::array<double, 10> skew_shape_{};
  // Per-window spike phase offsets (0 for non-spike windows), drawn once from the
  // plan seed in window order.
  std::vector<double> spike_phase_;
};

}  // namespace jockey

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
