// The named fault-class registry behind `jockey_cli chaos` and scenario files.
//
// Each class is one canonical FaultPlan exercising a single control-plane or
// cluster fault, with windows scaled to the run's deadline so every window
// actually overlaps the job. The registry is the only place the class names and
// window shapes live: the chaos subcommand, the scenario parser (`faults:
// {class: ...}`) and the differential tests all resolve names here, so a
// scenario arm and a chaos arm built from the same name are the same plan.

#ifndef SRC_FAULT_CHAOS_MATRIX_H_
#define SRC_FAULT_CHAOS_MATRIX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/fault/fault_plan.h"

namespace jockey {

// One row of the chaos matrix: a fault class name plus the plan that exercises it.
struct ChaosClass {
  std::string name;
  FaultPlan plan;
};

// The full matrix, one class per FaultKind, scaled to `deadline_seconds`.
// `num_machines` sizes the machine-burst class (30% of the fleet).
std::vector<ChaosClass> BuildChaosMatrix(double deadline_seconds, int num_machines);

// The registry's names, in matrix order (what `--classes` and `faults.class`
// accept).
std::vector<std::string> ChaosClassNames();

// The named class's plan scaled to `deadline_seconds`, or nullopt for an unknown
// name.
std::optional<FaultPlan> BuildChaosClassPlan(const std::string& name, double deadline_seconds,
                                             int num_machines);

// Per-run fault-plan seed derivation. Shared by the chaos sweep and the scenario
// compiler so a scenario episode re-runs a chaos arm bit-for-bit: the window
// schedule is the class's, the noise stream is this function of the run seed.
inline uint64_t ChaosPlanSeed(uint64_t run_seed) { return run_seed * 1000003 + 97; }

}  // namespace jockey

#endif  // SRC_FAULT_CHAOS_MATRIX_H_
