#include "src/fault/fault_plan.h"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/obs/json_format.h"
#include "src/obs/jsonl.h"

namespace jockey {

namespace {

FaultWindow MakeWindow(FaultKind kind, double start, double end, int job,
                       double magnitude) {
  FaultWindow w;
  w.kind = kind;
  w.start_seconds = start;
  w.end_seconds = end;
  w.job = job;
  w.magnitude = magnitude;
  return w;
}

// The shared fault-kind registry (trace_event.h) in the bool-out shape the loader
// uses; a new kind missing its name shows up as a load failure, not a silent default.
bool FaultKindFromName(const std::string& name, FaultKind* out) {
  std::optional<FaultKind> kind = ParseFaultKind(name);
  if (!kind.has_value()) {
    return false;
  }
  *out = *kind;
  return true;
}

bool ParseDoubleField(const FlatJsonFields& fields, const char* key, double* out) {
  const std::string* raw = fields.Find(key);
  if (raw == nullptr) return false;
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseIntField(const FlatJsonFields& fields, const char* key, int* out) {
  double value = 0.0;
  if (!ParseDoubleField(fields, key, &value)) return false;
  *out = static_cast<int>(value);
  return true;
}

std::optional<FaultPlan> Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return std::nullopt;
}

}  // namespace

FaultPlan& FaultPlan::Add(FaultWindow window) {
  windows_.push_back(window);
  return *this;
}

FaultWindow FaultPlan::ReportDropout(double start, double end, int job) {
  return MakeWindow(FaultKind::kReportDropout, start, end, job, 0.0);
}

FaultWindow FaultPlan::ReportStale(double start, double end, double lag_seconds,
                                   int job) {
  return MakeWindow(FaultKind::kReportStale, start, end, job, lag_seconds);
}

FaultWindow FaultPlan::ReportNoise(double start, double end, double sigma, int job) {
  return MakeWindow(FaultKind::kReportNoise, start, end, job, sigma);
}

FaultWindow FaultPlan::ControlBlackout(double start, double end, int job) {
  return MakeWindow(FaultKind::kControlBlackout, start, end, job, 0.0);
}

FaultWindow FaultPlan::GrantShortfall(double start, double end, double grant_factor,
                                      int job) {
  return MakeWindow(FaultKind::kGrantShortfall, start, end, job, grant_factor);
}

FaultWindow FaultPlan::TableFault(double start, double end, double corruption_factor) {
  return MakeWindow(FaultKind::kTableFault, start, end, -1, corruption_factor);
}

FaultWindow FaultPlan::MachineBurst(double start, double end, int first_machine,
                                    int machine_count) {
  FaultWindow w = MakeWindow(FaultKind::kMachineBurst, start, end, -1, 0.0);
  w.first_machine = first_machine;
  w.machine_count = machine_count;
  return w;
}

FaultWindow FaultPlan::MachineSlowdown(double start, double end, double factor,
                                       int first_machine, int machine_count) {
  FaultWindow w = MakeWindow(FaultKind::kMachineSlowdown, start, end, -1, factor);
  w.first_machine = first_machine;
  w.machine_count = machine_count;
  return w;
}

FaultWindow FaultPlan::ProfileSkew(double start, double end, double skew) {
  return MakeWindow(FaultKind::kProfileSkew, start, end, -1, skew);
}

FaultWindow FaultPlan::AdversarialSpike(double start, double end, double boost,
                                        double period_seconds) {
  FaultWindow w = MakeWindow(FaultKind::kAdversarialSpike, start, end, -1, boost);
  w.period_seconds = period_seconds;
  return w;
}

std::string FaultPlan::Validate() const {
  for (size_t i = 0; i < windows_.size(); ++i) {
    const FaultWindow& w = windows_[i];
    std::ostringstream prefix;
    prefix << "window " << i << " (" << FaultKindName(w.kind) << "): ";
    if (!(w.end_seconds > w.start_seconds) || w.start_seconds < 0.0) {
      return prefix.str() + "interval must satisfy 0 <= start < end";
    }
    switch (w.kind) {
      case FaultKind::kReportStale:
        if (w.magnitude <= 0.0) return prefix.str() + "staleness lag must be > 0";
        break;
      case FaultKind::kReportNoise:
        if (w.magnitude <= 0.0) return prefix.str() + "noise sigma must be > 0";
        break;
      case FaultKind::kGrantShortfall:
        if (w.magnitude < 0.0 || w.magnitude > 1.0) {
          return prefix.str() + "grant factor must be in [0, 1]";
        }
        break;
      case FaultKind::kTableFault:
        if (w.magnitude <= 0.0) {
          return prefix.str() + "corruption factor must be > 0";
        }
        break;
      case FaultKind::kMachineBurst:
        if (w.first_machine < 0 || w.machine_count <= 0) {
          return prefix.str() + "machine range must be non-negative and non-empty";
        }
        break;
      case FaultKind::kMachineSlowdown:
        if (w.magnitude <= 1.0) {
          return prefix.str() + "slowdown factor must be > 1";
        }
        if (w.first_machine < 0 || w.machine_count <= 0) {
          return prefix.str() + "machine range must be non-negative and non-empty";
        }
        break;
      case FaultKind::kProfileSkew:
        if (w.magnitude <= 0.0 || w.magnitude >= 1.0) {
          return prefix.str() + "skew strength must be in (0, 1)";
        }
        break;
      case FaultKind::kAdversarialSpike:
        if (w.magnitude <= 0.0) {
          return prefix.str() + "utilization boost must be > 0";
        }
        if (w.period_seconds <= 0.0) {
          return prefix.str() + "spike period must be > 0";
        }
        break;
      case FaultKind::kReportDropout:
      case FaultKind::kControlBlackout:
        break;
    }
  }
  return std::string();
}

void FaultPlan::Save(std::ostream& os) const {
  os << "{\"kind\":\"fault_plan\",\"seed\":" << seed_ << "}\n";
  for (const FaultWindow& w : windows_) {
    os << "{\"kind\":\"" << FaultKindName(w.kind) << "\""
       << ",\"start\":" << JsonNumber(w.start_seconds)
       << ",\"end\":" << JsonNumber(w.end_seconds) << ",\"job\":" << w.job
       << ",\"magnitude\":" << JsonNumber(w.magnitude)
       << ",\"first_machine\":" << w.first_machine
       << ",\"machine_count\":" << w.machine_count
       << ",\"period\":" << JsonNumber(w.period_seconds) << "}\n";
  }
}

std::optional<FaultPlan> FaultPlan::Load(std::istream& is, std::string* error) {
  FaultPlan plan;
  bool saw_header = false;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    FlatJsonFields fields;
    if (!ParseFlatJsonObject(line, fields)) {
      return Fail(error, "line " + std::to_string(line_no) + ": malformed JSON");
    }
    const std::string* kind_name = fields.Find("kind");
    if (kind_name == nullptr) {
      return Fail(error, "line " + std::to_string(line_no) + ": missing \"kind\"");
    }
    if (*kind_name == "fault_plan") {
      double seed = 0.0;
      if (!ParseDoubleField(fields, "seed", &seed) || seed < 0.0) {
        return Fail(error, "line " + std::to_string(line_no) + ": bad plan seed");
      }
      plan.seed_ = static_cast<uint64_t>(seed);
      saw_header = true;
      continue;
    }
    FaultWindow w;
    if (!FaultKindFromName(*kind_name, &w.kind)) {
      return Fail(error, "line " + std::to_string(line_no) + ": unknown fault kind \"" +
                             *kind_name + "\"");
    }
    if (!ParseDoubleField(fields, "start", &w.start_seconds) ||
        !ParseDoubleField(fields, "end", &w.end_seconds)) {
      return Fail(error, "line " + std::to_string(line_no) + ": missing start/end");
    }
    // Optional fields keep hand-written plans terse; defaults match FaultWindow.
    ParseIntField(fields, "job", &w.job);
    ParseDoubleField(fields, "magnitude", &w.magnitude);
    ParseIntField(fields, "first_machine", &w.first_machine);
    ParseIntField(fields, "machine_count", &w.machine_count);
    ParseDoubleField(fields, "period", &w.period_seconds);
    plan.windows_.push_back(w);
  }
  if (!saw_header && plan.windows_.empty()) {
    return Fail(error, "empty fault plan (no header, no windows)");
  }
  const std::string problem = plan.Validate();
  if (!problem.empty()) return Fail(error, problem);
  return plan;
}

}  // namespace jockey
