// Deterministic fault schedules for the control plane and cluster.
//
// Jockey's claim (Sections 4, 6) is that the control loop holds the latency SLO
// *despite* a noisy environment — yet the control plane itself (progress reports,
// control ticks, token grants, C(p, a) lookups) is usually assumed perfect. A
// FaultPlan makes those assumptions breakable on purpose: it is a schedule of typed
// fault windows, composable programmatically or loadable from JSONL, that the
// injector (fault_injector.h) evaluates at simulated-time points.
//
// Design rules:
//  * Determinism: a plan is pure data plus one seed. The same plan and seed produce
//    the same injected faults and therefore byte-identical JSONL traces across
//    reruns; a regression test asserts this.
//  * Zero-cost detachment: nothing in the simulator or the controller references a
//    plan directly — they hold a nullable FaultInjector pointer, and the detached
//    path is one branch per injection site (the BENCH_fault.json budget is the same
//    <= 2% the obs layer uses). A detached plan changes no simulation result
//    bit-for-bit.
//  * Windows are half-open [start_seconds, end_seconds) in simulated time, and may
//    overlap freely; each injection site consults the first matching window of its
//    kind. FaultKind lives in trace_event.h so plans and the fault_injected events
//    their injections emit share one taxonomy.

#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/trace_event.h"

namespace jockey {

// One typed fault window. The meaning of `magnitude` depends on the kind:
//   report_stale      staleness lag in seconds (reports arrive this late)
//   report_noise      sigma of the multiplicative per-stage fraction noise
//   grant_shortfall   grant factor in [0, 1]: granted = floor(requested * factor)
//   table_fault       prediction corruption factor (> 0); what a non-hardened
//                     consumer silently reads is healthy_prediction * factor
//   machine_slowdown  slowdown factor (> 1): service times of attempts started on
//                     affected machines are stretched by this much
//   profile_skew      skew strength in (0, 1): predictions shrink by up to this
//                     fraction, varying by progress decile (seeded, frozen at
//                     injector construction — the offline table itself is wrong)
//   adversarial_spike background-utilization boost (> 0) applied during the
//                     on-phase of each period (see period_seconds); the surge
//                     also oversubscribes machines, so attempts dispatched while
//                     it is on run (1 + boost)x slower
// and is unused for report_dropout, control_blackout and machine_burst.
struct FaultWindow {
  FaultKind kind = FaultKind::kReportDropout;
  double start_seconds = 0.0;
  double end_seconds = 0.0;  // half-open: the window covers [start, end)
  // Affected cluster job id; -1 targets every job. Ignored by table_fault and
  // machine_burst, which are cluster-wide by nature.
  int job = -1;
  double magnitude = 0.0;
  // machine_burst / machine_slowdown: machines [first_machine, first_machine +
  // machine_count) are hit together — a rack-style fault domain layered on the
  // per-machine Poisson failure model.
  int first_machine = 0;
  int machine_count = 0;
  // adversarial_spike only: the spike repeats every period (tuned to the control
  // period, so the controller keeps sampling the same phase); the boost is on for
  // the first half of each period, shifted by a seeded phase offset.
  double period_seconds = 0.0;

  bool Contains(double t) const { return t >= start_seconds && t < end_seconds; }
  bool AppliesTo(int job_id) const { return job < 0 || job == job_id; }
  // machine_burst / machine_slowdown: does the fault domain cover `machine`?
  bool CoversMachine(int machine) const {
    return machine >= first_machine && machine < first_machine + machine_count;
  }
};

// A seeded schedule of fault windows. Compose with Add() + the static builders, or
// round-trip through JSONL (one window per line, plus a header line with the seed).
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(uint64_t seed) : seed_(seed) {}

  FaultPlan& Add(FaultWindow window);

  static FaultWindow ReportDropout(double start, double end, int job = -1);
  static FaultWindow ReportStale(double start, double end, double lag_seconds, int job = -1);
  static FaultWindow ReportNoise(double start, double end, double sigma, int job = -1);
  static FaultWindow ControlBlackout(double start, double end, int job = -1);
  static FaultWindow GrantShortfall(double start, double end, double grant_factor,
                                    int job = -1);
  static FaultWindow TableFault(double start, double end, double corruption_factor);
  static FaultWindow MachineBurst(double start, double end, int first_machine,
                                  int machine_count);
  static FaultWindow MachineSlowdown(double start, double end, double factor,
                                     int first_machine, int machine_count);
  static FaultWindow ProfileSkew(double start, double end, double skew);
  static FaultWindow AdversarialSpike(double start, double end, double boost,
                                      double period_seconds);

  uint64_t seed() const { return seed_; }
  void set_seed(uint64_t seed) { seed_ = seed; }
  const std::vector<FaultWindow>& windows() const { return windows_; }
  bool empty() const { return windows_.empty(); }

  // Empty string when every window is well-formed; otherwise the first problem
  // found (bad interval, out-of-range magnitude, negative machine range).
  std::string Validate() const;

  // JSONL: a {"kind":"fault_plan","seed":N} header line, then one window per line.
  void Save(std::ostream& os) const;
  // Inverse of Save. Returns nullopt (and sets *error when given) on malformed
  // lines, unknown kinds, or a plan that fails Validate().
  static std::optional<FaultPlan> Load(std::istream& is, std::string* error = nullptr);

 private:
  uint64_t seed_ = 1;
  std::vector<FaultWindow> windows_;
};

}  // namespace jockey

#endif  // SRC_FAULT_FAULT_PLAN_H_
