#include "src/dag/trace.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>

namespace jockey {

double RunTrace::TotalWorkSeconds() const {
  double total = 0.0;
  for (const auto& t : tasks) {
    total += t.RunSeconds();
  }
  return total;
}

double RunTrace::TotalQueueSeconds() const {
  double total = 0.0;
  for (const auto& t : tasks) {
    total += t.QueueSeconds();
  }
  return total;
}

void RunTrace::Save(std::ostream& os) const {
  os.precision(17);
  os << "jockey_trace_v1 " << job_name << " " << submit_time << " " << finish_time << " "
     << tasks.size() << "\n";
  for (const auto& t : tasks) {
    os << t.id.stage << " " << t.id.index << " " << t.ready_time << " " << t.start_time
       << " " << t.end_time << " " << t.failed_attempts << " " << t.wasted_seconds << "\n";
  }
}

RunTrace RunTrace::Load(std::istream& is) {
  RunTrace trace;
  std::string magic;
  size_t n = 0;
  is >> magic >> trace.job_name >> trace.submit_time >> trace.finish_time >> n;
  assert(magic == "jockey_trace_v1");
  trace.tasks.resize(n);
  for (auto& t : trace.tasks) {
    is >> t.id.stage >> t.id.index >> t.ready_time >> t.start_time >> t.end_time >>
        t.failed_attempts >> t.wasted_seconds;
  }
  return trace;
}

std::vector<const TaskRecord*> RunTrace::StageRecords(int stage_id) const {
  std::vector<const TaskRecord*> out;
  for (const auto& t : tasks) {
    if (t.id.stage == stage_id) {
      out.push_back(&t);
    }
  }
  std::sort(out.begin(), out.end(), [](const TaskRecord* a, const TaskRecord* b) {
    return a->id.index < b->id.index;
  });
  return out;
}

}  // namespace jockey
