// Job profiles: the per-stage statistics Jockey extracts from prior runs.
//
// Section 4.1: "These estimates are based on one or more previous runs of the job,
// from which we extract performance statistics such as the per-stage distributions of
// task runtimes and initialization latencies, and the probabilities of single and
// multiple task failures."
//
// The profile feeds both predictors:
//   * the offline job simulator samples task runtimes / queueing delays / failures
//     from the per-stage empirical distributions, and
//   * the Amdahl model uses Ts (total CPU time per stage), ls (longest task), and
//     Ls (longest path from the stage to the end of the job).
// The totalworkWithQ progress indicator additionally uses Qs (total queueing time).

#ifndef SRC_DAG_PROFILE_H_
#define SRC_DAG_PROFILE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/dag/job_graph.h"
#include "src/dag/trace.h"
#include "src/util/stats.h"

namespace jockey {

// Statistics for one stage, aggregated over the tasks of one or more prior runs.
struct StageProfile {
  int num_tasks = 0;
  double total_exec_seconds = 0.0;   // Ts: sum of task execution times
  double total_queue_seconds = 0.0;  // Qs: sum of task queueing times
  double max_task_seconds = 0.0;     // ls: longest observed task execution
  double failure_prob = 0.0;         // per-attempt probability a task fails
  EmpiricalDistribution task_runtimes;
  EmpiricalDistribution queue_times;
};

// Per-stage statistics plus job-level derived quantities for one job.
class JobProfile {
 public:
  JobProfile() = default;

  // Aggregates one prior run into a profile. The trace must cover every task of
  // `graph` exactly once.
  static JobProfile FromTrace(const JobGraph& graph, const RunTrace& trace);

  // Merges statistics from several runs of the same job (same graph).
  static JobProfile FromTraces(const JobGraph& graph, const std::vector<RunTrace>& traces);

  // Assembles a profile from externally built per-stage statistics (used by the
  // pilot-run extrapolation for novel jobs).
  static JobProfile FromStages(std::vector<StageProfile> stages);

  const std::vector<StageProfile>& stages() const { return stages_; }
  const StageProfile& stage(int id) const { return stages_[static_cast<size_t>(id)]; }
  int num_stages() const { return static_cast<int>(stages_.size()); }

  // Aggregate CPU seconds over all stages (the P in the Amdahl model, before any
  // progress has been made).
  double TotalWorkSeconds() const;

  // Total queueing seconds over all stages.
  double TotalQueueSeconds() const;

  // Ls for each stage: longest path (weighted by ls) from the stage to job end.
  std::vector<double> LongestPathsToEnd(const JobGraph& graph) const;

  // Critical-path length of the job under this profile's per-stage longest tasks:
  // the minimum feasible completion time with infinite resources (Section 2.2).
  double CriticalPathSeconds(const JobGraph& graph) const;

  // Returns a copy with every task-runtime statistic multiplied by `factor`.
  // Used by the divergence experiments (Table 3) to model runs that need more work
  // than the training run.
  JobProfile ScaledBy(double factor) const;

  // Text serialization: profiles are the historical artifact Jockey persists between
  // the offline and runtime phases.
  void Save(std::ostream& os) const;
  static JobProfile Load(std::istream& is);

 private:
  std::vector<StageProfile> stages_;
};

}  // namespace jockey

#endif  // SRC_DAG_PROFILE_H_
