// Execution traces: what actually happened during one run of a job.
//
// The cluster simulator records a TaskRecord per task attempt sequence. Traces are the
// "readily available prior executions" Jockey builds its model from (Section 2.6):
// JobProfile::FromTrace() aggregates a trace into the per-stage statistics the offline
// simulator and the Amdahl model consume.

#ifndef SRC_DAG_TRACE_H_
#define SRC_DAG_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/dag/job_graph.h"
#include "src/util/event_queue.h"

namespace jockey {

// The recorded lifetime of one task (final successful attempt plus failure count).
struct TaskRecord {
  TaskId id;
  SimTime ready_time = 0.0;    // inputs became available / task entered the queue
  SimTime start_time = 0.0;    // successful attempt began executing
  SimTime end_time = 0.0;      // successful attempt finished
  int failed_attempts = 0;     // attempts that died and were re-executed
  double wasted_seconds = 0.0; // execution time consumed by failed attempts

  double QueueSeconds() const { return start_time - ready_time; }
  double RunSeconds() const { return end_time - start_time; }
};

// Everything recorded about one run of one job.
struct RunTrace {
  std::string job_name;
  std::vector<TaskRecord> tasks;
  SimTime submit_time = 0.0;
  SimTime finish_time = 0.0;

  double CompletionSeconds() const { return finish_time - submit_time; }

  // Sum of successful-attempt execution time across all tasks ("total work").
  double TotalWorkSeconds() const;

  // Sum of queueing time across all tasks.
  double TotalQueueSeconds() const;

  // Records for one stage, in task-index order.
  std::vector<const TaskRecord*> StageRecords(int stage_id) const;

  // Text serialization; traces are the historical artifact operators keep between
  // runs of a recurring job.
  void Save(std::ostream& os) const;
  static RunTrace Load(std::istream& is);
};

}  // namespace jockey

#endif  // SRC_DAG_TRACE_H_
