#include "src/dag/job_graph.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace jockey {

bool StageSpec::IsBarrier() const {
  return std::any_of(inputs.begin(), inputs.end(), [](const StageEdge& e) {
    return e.pattern == CommPattern::kAllToAll;
  });
}

JobGraph::JobGraph(std::string name, std::vector<StageSpec> stages)
    : name_(std::move(name)), stages_(std::move(stages)) {}

int JobGraph::num_tasks() const {
  int total = 0;
  for (const auto& s : stages_) {
    total += s.num_tasks;
  }
  return total;
}

int JobGraph::num_barrier_stages() const {
  int total = 0;
  for (const auto& s : stages_) {
    if (s.IsBarrier()) {
      ++total;
    }
  }
  return total;
}

bool JobGraph::Validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  if (stages_.empty()) {
    return fail("job has no stages");
  }
  for (size_t i = 0; i < stages_.size(); ++i) {
    const auto& s = stages_[i];
    if (s.num_tasks <= 0) {
      return fail("stage " + s.name + " has non-positive task count");
    }
    for (const auto& e : s.inputs) {
      if (e.from < 0 || e.from >= num_stages()) {
        return fail("stage " + s.name + " has an edge from an invalid stage id");
      }
      if (e.from == static_cast<int>(i)) {
        return fail("stage " + s.name + " depends on itself");
      }
    }
  }
  // Kahn's algorithm detects cycles.
  if (TopologicalOrder().size() != stages_.size()) {
    return fail("job graph contains a cycle");
  }
  if (error != nullptr) {
    error->clear();
  }
  return true;
}

std::vector<int> JobGraph::TopologicalOrder() const {
  std::vector<int> in_degree(stages_.size(), 0);
  auto consumers = ConsumerLists();
  for (size_t i = 0; i < stages_.size(); ++i) {
    in_degree[i] = static_cast<int>(stages_[i].inputs.size());
  }
  std::vector<int> order;
  order.reserve(stages_.size());
  std::vector<int> ready;
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (in_degree[i] == 0) {
      ready.push_back(static_cast<int>(i));
    }
  }
  // Process in ascending id order for determinism.
  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), std::greater<int>());
    int s = ready.back();
    ready.pop_back();
    order.push_back(s);
    for (int c : consumers[static_cast<size_t>(s)]) {
      if (--in_degree[static_cast<size_t>(c)] == 0) {
        ready.push_back(c);
      }
    }
  }
  return order;
}

std::vector<int> JobGraph::SourceStages() const {
  std::vector<int> out;
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].inputs.empty()) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<int> JobGraph::SinkStages() const {
  std::vector<bool> has_consumer(stages_.size(), false);
  for (const auto& s : stages_) {
    for (const auto& e : s.inputs) {
      has_consumer[static_cast<size_t>(e.from)] = true;
    }
  }
  std::vector<int> out;
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (!has_consumer[i]) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<std::vector<int>> JobGraph::ConsumerLists() const {
  std::vector<std::vector<int>> consumers(stages_.size());
  for (size_t i = 0; i < stages_.size(); ++i) {
    for (const auto& e : stages_[i].inputs) {
      consumers[static_cast<size_t>(e.from)].push_back(static_cast<int>(i));
    }
  }
  return consumers;
}

std::vector<double> JobGraph::LongestPathToEnd(const std::vector<double>& per_stage_cost) const {
  assert(per_stage_cost.size() == stages_.size());
  std::vector<double> longest(stages_.size(), 0.0);
  auto order = TopologicalOrder();
  // Walk consumers-last so each stage's value is cost + max over consumers.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int s = *it;
    double best_consumer = 0.0;
    // Find consumers by scanning edges (graphs here are small: <=~200 stages).
    for (size_t c = 0; c < stages_.size(); ++c) {
      for (const auto& e : stages_[c].inputs) {
        if (e.from == s) {
          best_consumer = std::max(best_consumer, longest[c]);
        }
      }
    }
    longest[static_cast<size_t>(s)] = per_stage_cost[static_cast<size_t>(s)] + best_consumer;
  }
  return longest;
}

double JobGraph::CriticalPath(const std::vector<double>& per_stage_cost) const {
  auto longest = LongestPathToEnd(per_stage_cost);
  double best = 0.0;
  for (double v : longest) {
    best = std::max(best, v);
  }
  return best;
}

std::vector<int> JobGraph::InputTasksFor(int stage_id, int index, const StageEdge& edge) const {
  const StageSpec& from = stage(edge.from);
  std::vector<int> out;
  if (edge.pattern == CommPattern::kAllToAll) {
    out.reserve(static_cast<size_t>(from.num_tasks));
    for (int i = 0; i < from.num_tasks; ++i) {
      out.push_back(i);
    }
    return out;
  }
  // Proportional slice: consumer task `index` of n_c tasks reads producer tasks in
  // [index * n_p / n_c, (index + 1) * n_p / n_c), at least one task.
  int n_c = stage(stage_id).num_tasks;
  int n_p = from.num_tasks;
  int lo = static_cast<int>(static_cast<int64_t>(index) * n_p / n_c);
  int hi = static_cast<int>(static_cast<int64_t>(index + 1) * n_p / n_c);
  if (hi <= lo) {
    hi = lo + 1;
  }
  lo = std::min(lo, n_p - 1);
  hi = std::min(hi, n_p);
  for (int i = lo; i < hi; ++i) {
    out.push_back(i);
  }
  return out;
}

std::string JobGraph::ToDot() const {
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n";
  os << "  rankdir=TB;\n";
  for (size_t i = 0; i < stages_.size(); ++i) {
    const auto& s = stages_[i];
    // Node area tracks task count, as in the paper's Fig 3 rendering.
    double size = 0.3 + 0.25 * std::log10(1.0 + s.num_tasks);
    os << "  s" << i << " [label=\"" << s.name << "\\n" << s.num_tasks << "\""
       << (s.IsBarrier() ? ", shape=triangle, style=filled, fillcolor=lightblue"
                         : ", shape=circle")
       << ", width=" << size << "];\n";
  }
  for (size_t i = 0; i < stages_.size(); ++i) {
    for (const auto& e : stages_[i].inputs) {
      os << "  s" << e.from << " -> s" << i
         << (e.pattern == CommPattern::kAllToAll ? " [style=bold]" : "") << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace jockey
