#include "src/dag/dependency_tracker.h"

#include <cassert>

namespace jockey {

DependencyTracker::DependencyTracker(const JobGraph& graph) : graph_(&graph) {
  int s_count = graph.num_stages();
  task_base_.resize(static_cast<size_t>(s_count));
  stage_total_.resize(static_cast<size_t>(s_count));
  for (int s = 0; s < s_count; ++s) {
    task_base_[static_cast<size_t>(s)] = total_tasks_;
    stage_total_[static_cast<size_t>(s)] = graph.stage(s).num_tasks;
    total_tasks_ += graph.stage(s).num_tasks;
  }
  stage_of_.resize(static_cast<size_t>(total_tasks_));
  for (int s = 0; s < s_count; ++s) {
    for (int i = 0; i < graph.stage(s).num_tasks; ++i) {
      stage_of_[static_cast<size_t>(task_base_[static_cast<size_t>(s)] + i)] = s;
    }
  }
  one_to_one_consumers_.resize(static_cast<size_t>(total_tasks_));
  barrier_consumers_.resize(static_cast<size_t>(s_count));
  initial_wait_count_.assign(static_cast<size_t>(total_tasks_), 0);

  for (int c = 0; c < s_count; ++c) {
    const StageSpec& consumer = graph.stage(c);
    for (const StageEdge& edge : consumer.inputs) {
      if (edge.pattern == CommPattern::kAllToAll) {
        barrier_consumers_[static_cast<size_t>(edge.from)].push_back(c);
        for (int i = 0; i < consumer.num_tasks; ++i) {
          ++initial_wait_count_[static_cast<size_t>(FlatId(c, i))];
        }
      } else {
        for (int i = 0; i < consumer.num_tasks; ++i) {
          int consumer_task = FlatId(c, i);
          for (int p : graph.InputTasksFor(c, i, edge)) {
            one_to_one_consumers_[static_cast<size_t>(FlatId(edge.from, p))].push_back(
                consumer_task);
            ++initial_wait_count_[static_cast<size_t>(consumer_task)];
          }
        }
      }
    }
  }
}

DependencyTracker::State::State(const DependencyTracker& tracker)
    : tracker_(&tracker),
      wait_count_(tracker.initial_wait_count_),
      stage_done_(tracker.stage_total_.size(), 0) {
  for (int t = 0; t < tracker.total_tasks(); ++t) {
    if (wait_count_[static_cast<size_t>(t)] == 0) {
      newly_ready_.push_back(t);
    }
  }
}

void DependencyTracker::State::Unblock(int flat_task) {
  if (--wait_count_[static_cast<size_t>(flat_task)] == 0) {
    newly_ready_.push_back(flat_task);
  }
}

void DependencyTracker::State::MarkDone(int flat_task) {
  int s = tracker_->StageOf(flat_task);
  ++done_total_;
  int done = ++stage_done_[static_cast<size_t>(s)];
  assert(done <= tracker_->StageTotal(s) && "task completed more than once");
  if (done == tracker_->StageTotal(s)) {
    for (int c : tracker_->barrier_consumers_[static_cast<size_t>(s)]) {
      int base = tracker_->task_base_[static_cast<size_t>(c)];
      for (int i = 0; i < tracker_->StageTotal(c); ++i) {
        Unblock(base + i);
      }
    }
  }
  for (int consumer : tracker_->one_to_one_consumers_[static_cast<size_t>(flat_task)]) {
    Unblock(consumer);
  }
}

std::vector<int> DependencyTracker::State::TakeNewlyReady() {
  std::vector<int> out;
  out.swap(newly_ready_);
  return out;
}

void DependencyTracker::State::TakeNewlyReadyInto(std::vector<int>& out) {
  out.insert(out.end(), newly_ready_.begin(), newly_ready_.end());
  newly_ready_.clear();
}

double DependencyTracker::State::FracComplete(int stage) const {
  return static_cast<double>(stage_done_[static_cast<size_t>(stage)]) /
         static_cast<double>(tracker_->StageTotal(stage));
}

std::vector<double> DependencyTracker::State::FracCompleteAll() const {
  std::vector<double> out(stage_done_.size());
  for (size_t s = 0; s < stage_done_.size(); ++s) {
    out[s] = static_cast<double>(stage_done_[s]) /
             static_cast<double>(tracker_->stage_total_[s]);
  }
  return out;
}

}  // namespace jockey
