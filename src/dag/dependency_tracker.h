// Task-readiness bookkeeping shared by both simulators.
//
// Given a JobGraph, DependencyTracker precomputes, once, the wake-up lists implied by
// the stage edges: one-to-one edges wake specific consumer tasks, full-shuffle
// (barrier) edges wake every task of the consumer stage only when the producer stage
// fully completes. A State instance then tracks one execution's completion progress.
//
// Used by Jockey's offline job simulator (src/sim/) and by the cluster simulator's
// per-job manager (src/cluster/) so both enforce identical DAG semantics.

#ifndef SRC_DAG_DEPENDENCY_TRACKER_H_
#define SRC_DAG_DEPENDENCY_TRACKER_H_

#include <vector>

#include "src/dag/job_graph.h"

namespace jockey {

class DependencyTracker {
 public:
  explicit DependencyTracker(const JobGraph& graph);

  const JobGraph& graph() const { return *graph_; }
  int total_tasks() const { return total_tasks_; }
  int FlatId(int stage, int index) const {
    return task_base_[static_cast<size_t>(stage)] + index;
  }
  int StageOf(int flat_task) const { return stage_of_[static_cast<size_t>(flat_task)]; }
  int IndexOf(int flat_task) const {
    return flat_task - task_base_[static_cast<size_t>(StageOf(flat_task))];
  }
  int StageTotal(int stage) const { return stage_total_[static_cast<size_t>(stage)]; }

  // Completion state of one execution.
  class State {
   public:
    explicit State(const DependencyTracker& tracker);

    // Marks a task's successful completion; newly unblocked tasks are appended to the
    // internal ready list. Each task must be marked done exactly once.
    void MarkDone(int flat_task);

    // Drains and returns tasks that became ready since the last call (including the
    // initially ready source tasks on the first call).
    std::vector<int> TakeNewlyReady();

    // Allocation-free variant: appends the drained tasks to `out` (not cleared).
    // The cluster simulator's event loop calls this with a reused scratch vector.
    void TakeNewlyReadyInto(std::vector<int>& out);

    bool AllDone() const { return done_total_ == tracker_->total_tasks(); }
    int done_total() const { return done_total_; }
    int StageDone(int stage) const { return stage_done_[static_cast<size_t>(stage)]; }
    double FracComplete(int stage) const;
    // Per-stage completed fraction for every stage (the f_s vector of Section 4.3).
    std::vector<double> FracCompleteAll() const;

   private:
    void Unblock(int flat_task);

    const DependencyTracker* tracker_;
    std::vector<int> wait_count_;
    std::vector<int> stage_done_;
    std::vector<int> newly_ready_;
    int done_total_ = 0;
  };

 private:
  const JobGraph* graph_;
  int total_tasks_ = 0;
  std::vector<int> task_base_;
  std::vector<int> stage_of_;
  std::vector<int> stage_total_;
  std::vector<std::vector<int>> one_to_one_consumers_;  // per flat task
  std::vector<std::vector<int>> barrier_consumers_;     // per stage
  std::vector<int> initial_wait_count_;
};

}  // namespace jockey

#endif  // SRC_DAG_DEPENDENCY_TRACKER_H_
