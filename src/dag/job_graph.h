// Job algebra: the static structure of a data-parallel job.
//
// A SCOPE/Dryad job compiles to an execution-plan graph whose nodes are *stages* (map,
// reduce, join, aggregate, ...) and whose edges carry data between them (Section 2.1).
// Each stage consists of one or more parallel *tasks* (the paper also calls them
// vertices). Communication between connected stages ranges from one-to-one to
// all-to-all; an all-to-all edge is a *barrier*: no task of the consumer can start
// until every task of the producer has finished.
//
// JobGraph is pure structure — task counts, dependencies, and communication patterns.
// Runtime behaviour (how long tasks take, how often they fail) lives in JobProfile
// (model side) and in the workload generator's ground truth (cluster side).

#ifndef SRC_DAG_JOB_GRAPH_H_
#define SRC_DAG_JOB_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace jockey {

// How tasks of a consumer stage depend on tasks of a producer stage.
enum class CommPattern {
  // Task i of the consumer reads the proportional slice of the producer's tasks.
  // With equal task counts this is a 1:1 pipe; with differing counts it models
  // repartitioning without a global barrier.
  kOneToOne,
  // Full shuffle: every consumer task reads from every producer task, so the consumer
  // cannot start until the producer stage completely finishes (a barrier).
  kAllToAll,
};

// An input edge of a stage.
struct StageEdge {
  int from = -1;  // producer stage id
  CommPattern pattern = CommPattern::kOneToOne;
};

// One stage of the execution plan.
struct StageSpec {
  std::string name;
  int num_tasks = 1;
  std::vector<StageEdge> inputs;

  // True if any input is a full shuffle, i.e. the stage starts behind a barrier.
  bool IsBarrier() const;
};

// Identifies one task within a job: stage id plus task index within the stage.
struct TaskId {
  int stage = -1;
  int index = -1;

  bool operator==(const TaskId&) const = default;
};

// The execution-plan graph of one job.
//
// Stage ids are indices into stages(). The graph must be acyclic; Validate() checks
// this along with edge and task-count sanity.
class JobGraph {
 public:
  JobGraph() = default;
  JobGraph(std::string name, std::vector<StageSpec> stages);

  const std::string& name() const { return name_; }
  const std::vector<StageSpec>& stages() const { return stages_; }
  const StageSpec& stage(int id) const { return stages_[static_cast<size_t>(id)]; }
  int num_stages() const { return static_cast<int>(stages_.size()); }

  // Total number of tasks (vertices) across all stages.
  int num_tasks() const;

  // Number of stages with at least one all-to-all input.
  int num_barrier_stages() const;

  // Returns true and clears `error` if the graph is well-formed (non-empty stages,
  // valid edge endpoints, positive task counts, acyclic); otherwise stores a message.
  bool Validate(std::string* error = nullptr) const;

  // Stage ids in a topological order (producers before consumers). Requires a valid
  // acyclic graph.
  std::vector<int> TopologicalOrder() const;

  // Stages with no inputs / no consumers.
  std::vector<int> SourceStages() const;
  std::vector<int> SinkStages() const;

  // Consumers of each stage (inverse of the input edges).
  std::vector<std::vector<int>> ConsumerLists() const;

  // Longest path weight from each stage to the end of the job, where stage s costs
  // per_stage_cost[s]. Ls in the paper's Amdahl-model notation (Section 4.1) uses the
  // longest task execution time as the cost. Returns one value per stage.
  std::vector<double> LongestPathToEnd(const std::vector<double>& per_stage_cost) const;

  // Critical-path length of the whole job under the given per-stage costs: the
  // minimum completion time with infinite resources.
  double CriticalPath(const std::vector<double>& per_stage_cost) const;

  // Producer task indices that consumer task `index` of `stage_id` waits for on input
  // edge `edge`. For kAllToAll this is every producer task; for kOneToOne it is the
  // proportional slice (at least one task).
  std::vector<int> InputTasksFor(int stage_id, int index, const StageEdge& edge) const;

  // Graphviz rendering in the style of the paper's Fig 3: triangles for full-shuffle
  // (barrier) stages, node size keyed to task count.
  std::string ToDot() const;

 private:
  std::string name_;
  std::vector<StageSpec> stages_;
};

}  // namespace jockey

#endif  // SRC_DAG_JOB_GRAPH_H_
