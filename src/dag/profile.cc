#include "src/dag/profile.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>

namespace jockey {

JobProfile JobProfile::FromTrace(const JobGraph& graph, const RunTrace& trace) {
  return FromTraces(graph, {trace});
}

JobProfile JobProfile::FromTraces(const JobGraph& graph, const std::vector<RunTrace>& traces) {
  JobProfile profile;
  profile.stages_.resize(static_cast<size_t>(graph.num_stages()));
  std::vector<int64_t> attempts(profile.stages_.size(), 0);
  std::vector<int64_t> failures(profile.stages_.size(), 0);
  for (size_t s = 0; s < profile.stages_.size(); ++s) {
    profile.stages_[s].num_tasks = graph.stage(static_cast<int>(s)).num_tasks;
  }
  for (const auto& trace : traces) {
    for (const auto& t : trace.tasks) {
      assert(t.id.stage >= 0 && t.id.stage < graph.num_stages());
      auto& sp = profile.stages_[static_cast<size_t>(t.id.stage)];
      double run = t.RunSeconds();
      double queue = std::max(0.0, t.QueueSeconds());
      sp.total_exec_seconds += run;
      sp.total_queue_seconds += queue;
      sp.max_task_seconds = std::max(sp.max_task_seconds, run);
      sp.task_runtimes.Add(run);
      sp.queue_times.Add(queue);
      attempts[static_cast<size_t>(t.id.stage)] += 1 + t.failed_attempts;
      failures[static_cast<size_t>(t.id.stage)] += t.failed_attempts;
    }
  }
  double n_traces = static_cast<double>(traces.size());
  for (size_t s = 0; s < profile.stages_.size(); ++s) {
    auto& sp = profile.stages_[s];
    // Ts and Qs are per-run quantities; average over the merged traces.
    sp.total_exec_seconds /= n_traces;
    sp.total_queue_seconds /= n_traces;
    if (attempts[s] > 0) {
      sp.failure_prob = static_cast<double>(failures[s]) / static_cast<double>(attempts[s]);
    }
  }
  return profile;
}

JobProfile JobProfile::FromStages(std::vector<StageProfile> stages) {
  JobProfile profile;
  profile.stages_ = std::move(stages);
  return profile;
}

double JobProfile::TotalWorkSeconds() const {
  double total = 0.0;
  for (const auto& s : stages_) {
    total += s.total_exec_seconds;
  }
  return total;
}

double JobProfile::TotalQueueSeconds() const {
  double total = 0.0;
  for (const auto& s : stages_) {
    total += s.total_queue_seconds;
  }
  return total;
}

std::vector<double> JobProfile::LongestPathsToEnd(const JobGraph& graph) const {
  std::vector<double> cost(stages_.size());
  for (size_t s = 0; s < stages_.size(); ++s) {
    cost[s] = stages_[s].max_task_seconds;
  }
  return graph.LongestPathToEnd(cost);
}

double JobProfile::CriticalPathSeconds(const JobGraph& graph) const {
  std::vector<double> cost(stages_.size());
  for (size_t s = 0; s < stages_.size(); ++s) {
    cost[s] = stages_[s].max_task_seconds;
  }
  return graph.CriticalPath(cost);
}

JobProfile JobProfile::ScaledBy(double factor) const {
  JobProfile scaled = *this;
  for (auto& s : scaled.stages_) {
    s.total_exec_seconds *= factor;
    s.max_task_seconds *= factor;
    std::vector<double> runtimes = s.task_runtimes.samples();
    for (double& r : runtimes) {
      r *= factor;
    }
    s.task_runtimes = EmpiricalDistribution(std::move(runtimes));
  }
  return scaled;
}

void JobProfile::Save(std::ostream& os) const {
  os.precision(17);  // round-trip doubles exactly
  os << "jockey_profile_v1 " << stages_.size() << "\n";
  for (const auto& s : stages_) {
    os << s.num_tasks << " " << s.total_exec_seconds << " " << s.total_queue_seconds << " "
       << s.max_task_seconds << " " << s.failure_prob << "\n";
    os << s.task_runtimes.count();
    for (double x : s.task_runtimes.samples()) {
      os << " " << x;
    }
    os << "\n" << s.queue_times.count();
    for (double x : s.queue_times.samples()) {
      os << " " << x;
    }
    os << "\n";
  }
}

JobProfile JobProfile::Load(std::istream& is) {
  JobProfile profile;
  std::string magic;
  size_t n = 0;
  is >> magic >> n;
  assert(magic == "jockey_profile_v1");
  profile.stages_.resize(n);
  for (auto& s : profile.stages_) {
    is >> s.num_tasks >> s.total_exec_seconds >> s.total_queue_seconds >> s.max_task_seconds >>
        s.failure_prob;
    size_t count = 0;
    is >> count;
    std::vector<double> runtimes(count);
    for (double& x : runtimes) {
      is >> x;
    }
    s.task_runtimes = EmpiricalDistribution(std::move(runtimes));
    is >> count;
    std::vector<double> queues(count);
    for (double& x : queues) {
      is >> x;
    }
    s.queue_times = EmpiricalDistribution(std::move(queues));
  }
  return profile;
}

}  // namespace jockey
