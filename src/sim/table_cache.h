// Persistent on-disk cache of frozen C(p, a) tables.
//
// SLO jobs are overwhelmingly *recurring* (Section 2.3: the same plan re-executes run
// after run), so the expensive offline precompute — ~140 Monte Carlo simulations per
// job — keeps producing the same table for the same inputs. The cache stores each
// frozen table in one file named by a 64-bit FNV-1a key the caller derives from
// everything the build depends on: the job graph, the (scaled) profile, the progress
// indicator, and the model configuration (grid, runs, buckets, simulator knobs,
// seed). Thread count is deliberately NOT part of the key: parallel and serial builds
// are bit-identical by construction (see completion_model.h), so they share entries.
//
// Every operation returns a CacheStatus carrying a reason code — hit, miss, corrupt,
// io-error, stored, disabled — instead of a silent bool, and mirrors that outcome
// into the attached Observer as a trace event plus counters (table_cache.hits,
// .misses, .corrupt, .io_errors, .stores, .evictions). A hit deserializes the frozen
// table and skips simulation entirely; every non-hit is a build. Writes go through a
// temp file + rename so a crashed writer never leaves a torn entry behind.
//
// Eviction: with `max_bytes` set, every Store prunes least-recently-used `.cpa`
// entries (file mtime order; hits touch their entry) until the directory fits the
// budget. The most recent entry is never evicted, so a single oversized table still
// caches.

#ifndef SRC_SIM_TABLE_CACHE_H_
#define SRC_SIM_TABLE_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/obs/observer.h"
#include "src/sim/completion_table.h"

namespace jockey {

class FaultInjector;

// 64-bit FNV-1a over `bytes`, chained from `seed` (pass the previous hash to fold
// multiple fields into one key).
uint64_t HashBytes(const void* data, size_t size, uint64_t seed = 14695981039346656037ULL);
uint64_t HashString(const std::string& s, uint64_t seed = 14695981039346656037ULL);

// The outcome of one cache operation. `code` reuses the trace-event taxonomy
// (trace_event.h) so statuses and emitted events can never disagree.
struct CacheStatus {
  CacheCode code = CacheCode::kDisabled;
  // Human-readable detail for io_error / corrupt outcomes; empty otherwise.
  std::string message;

  bool ok() const { return code == CacheCode::kHit || code == CacheCode::kStored; }
};

struct TableCacheOptions {
  // Total .cpa bytes the directory may hold; 0 disables pruning.
  uint64_t max_bytes = 0;
  // Receives lookup/store/evict trace events and counters; default-disabled.
  Observer observer;
  // Fault injection (fault_injector.h): when set and a table_fault window covers
  // time 0 (cache traffic is offline, stamped at simulated time 0), Load() reports
  // kIoError without touching the entry — exercising callers' rebuild paths. Must
  // outlive the cache. nullptr detaches.
  const FaultInjector* fault_injector = nullptr;
};

class TableCache {
 public:
  // `dir` is created lazily on the first Store(). An empty dir disables the cache
  // (Load and Store report CacheCode::kDisabled and touch nothing).
  explicit TableCache(std::string dir, TableCacheOptions options = TableCacheOptions());

  const std::string& dir() const { return dir_; }
  bool enabled() const { return !dir_.empty(); }

  std::string PathForKey(uint64_t key) const;

  struct LoadResult {
    CacheStatus status;
    // Set exactly when status.code == kHit.
    std::optional<CompletionTable> table;
  };

  // Fetches the frozen table under `key`. A hit refreshes the entry's LRU position
  // when pruning is configured; corrupt or unreadable entries report their reason
  // code and the caller rebuilds (the entry will be overwritten by the next Store).
  LoadResult Load(uint64_t key) const;

  // Persists a frozen table under `key`, then prunes to `max_bytes` if configured.
  // Best-effort: callers proceed on any outcome.
  CacheStatus Store(uint64_t key, const CompletionTable& table) const;

  // Evicts least-recently-used entries until the directory holds at most
  // `max_bytes` of .cpa data (keeping at least the newest entry). Returns the
  // number of entries evicted. No-op when pruning is not configured.
  int PruneToLimit() const;

 private:
  std::string dir_;
  TableCacheOptions options_;
};

}  // namespace jockey

#endif  // SRC_SIM_TABLE_CACHE_H_
