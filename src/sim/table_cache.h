// Persistent on-disk cache of frozen C(p, a) tables.
//
// SLO jobs are overwhelmingly *recurring* (Section 2.3: the same plan re-executes run
// after run), so the expensive offline precompute — ~140 Monte Carlo simulations per
// job — keeps producing the same table for the same inputs. The cache stores each
// frozen table in one file named by a 64-bit FNV-1a key the caller derives from
// everything the build depends on: the job graph, the (scaled) profile, the progress
// indicator, and the model configuration (grid, runs, buckets, simulator knobs,
// seed). Thread count is deliberately NOT part of the key: parallel and serial builds
// are bit-identical by construction (see completion_model.h), so they share entries.
//
// A hit deserializes the frozen table and skips simulation entirely; a miss builds
// and writes back. Corrupt or truncated entries are treated as misses. Writes go
// through a temp file + rename so a crashed writer never leaves a torn entry behind.

#ifndef SRC_SIM_TABLE_CACHE_H_
#define SRC_SIM_TABLE_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/sim/completion_table.h"

namespace jockey {

// 64-bit FNV-1a over `bytes`, chained from `seed` (pass the previous hash to fold
// multiple fields into one key).
uint64_t HashBytes(const void* data, size_t size, uint64_t seed = 14695981039346656037ULL);
uint64_t HashString(const std::string& s, uint64_t seed = 14695981039346656037ULL);

class TableCache {
 public:
  // `dir` is created lazily on the first Store(). An empty dir disables the cache
  // (TryLoad misses, Store is a no-op).
  explicit TableCache(std::string dir);

  const std::string& dir() const { return dir_; }
  bool enabled() const { return !dir_.empty(); }

  std::string PathForKey(uint64_t key) const;

  // Returns the cached frozen table for `key`, or nullopt on miss / corrupt entry.
  std::optional<CompletionTable> TryLoad(uint64_t key) const;

  // Persists a frozen table under `key`. Returns false if the cache is disabled or
  // the write failed (the cache is best-effort; callers proceed either way).
  bool Store(uint64_t key, const CompletionTable& table) const;

 private:
  std::string dir_;
};

}  // namespace jockey

#endif  // SRC_SIM_TABLE_CACHE_H_
