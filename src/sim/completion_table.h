// The precomputed completion-time distributions C(p, a) (Section 4.1).
//
// "For each SLO job, we estimate C(p, a) — a random variable denoting the remaining
// time to complete the job when the job has made progress p and is allocated a
// tokens. ... From each simulation, say at allocation a that finishes in time T, we
// compute for all discrete t in [0, T] the progress of the job p_t at time t and the
// remaining time to completion t_c = T - t. ... Iterating over all t in a run and
// simulating the job many times with different values of a provides many more
// samples, allowing us to estimate the distribution well."
//
// The table discretizes progress into buckets and stores a remaining-time sample set
// per (bucket, allocation) cell. Queries interpolate linearly between allocation grid
// points and fall back to the nearest populated bucket when a cell is empty (late
// progress values may never be observed at tiny allocations within a run's samples).

#ifndef SRC_SIM_COMPLETION_TABLE_H_
#define SRC_SIM_COMPLETION_TABLE_H_

#include <iosfwd>
#include <vector>

#include "src/util/stats.h"

namespace jockey {

class CompletionTable {
 public:
  // `allocations` is the token grid simulated offline (strictly increasing, >= 1
  // each); progress is bucketed into `num_buckets` cells over [0, 1].
  CompletionTable(std::vector<int> allocations, int num_buckets = 50);

  // Records one observation: at progress `p` with grid allocation index `alloc_index`,
  // `remaining_seconds` remained until completion.
  void AddSample(double p, int alloc_index, double remaining_seconds);

  // Predicted remaining seconds at progress `p` under `allocation` tokens, at the
  // given sample quantile (the paper cares about worst-case-ish completion, so the
  // control loop queries a high quantile). Allocation is clamped to the grid range
  // and interpolated linearly between grid points.
  double Predict(double p, double allocation, double quantile) const;

  const std::vector<int>& allocations() const { return allocations_; }
  int num_buckets() const { return num_buckets_; }

  // Total samples stored (diagnostics).
  size_t TotalSamples() const;

  // Text serialization of the quantile summaries actually used at runtime.
  void SaveSummary(std::ostream& os, const std::vector<double>& quantiles) const;

 private:
  int BucketOf(double p) const;
  // Remaining-time quantile at exactly grid column `ai`, searching nearby buckets if
  // the target bucket holds no samples.
  double CellQuantile(int bucket, int ai, double quantile) const;

  std::vector<int> allocations_;
  int num_buckets_;
  // cells_[bucket * allocations_.size() + alloc_index]
  std::vector<EmpiricalDistribution> cells_;
};

}  // namespace jockey

#endif  // SRC_SIM_COMPLETION_TABLE_H_
