// The precomputed completion-time distributions C(p, a) (Section 4.1).
//
// "For each SLO job, we estimate C(p, a) — a random variable denoting the remaining
// time to complete the job when the job has made progress p and is allocated a
// tokens. ... From each simulation, say at allocation a that finishes in time T, we
// compute for all discrete t in [0, T] the progress of the job p_t at time t and the
// remaining time to completion t_c = T - t. ... Iterating over all t in a run and
// simulating the job many times with different values of a provides many more
// samples, allowing us to estimate the distribution well."
//
// The table discretizes progress into buckets and stores a remaining-time sample set
// per (bucket, allocation) cell. Queries interpolate linearly between allocation grid
// points and fall back to the nearest populated bucket when a cell is empty (late
// progress values may never be observed at tiny allocations within a run's samples).
//
// Lifecycle: the table is *mutable* while the offline builder is adding samples, then
// Freeze() compacts it into a dense read-only form: one flat sorted sample buffer
// plus per-cell (offset, count) ranges, with the empty-bucket fallback resolved once
// at freeze time. A frozen Predict() is two array lookups plus interpolation — const,
// allocation-free, and safe to call from many threads concurrently (the runtime
// control loop scans min..max tokens every tick, and the multi-job arbiter queries
// several jobs' tables during one rebalance). Frozen tables serialize to a compact
// binary blob (Save/Load) so recurring workloads can skip re-simulation entirely; see
// table_cache.h for the on-disk cache keyed by (graph, profile, config).

#ifndef SRC_SIM_COMPLETION_TABLE_H_
#define SRC_SIM_COMPLETION_TABLE_H_

#include <iosfwd>
#include <optional>
#include <vector>

#include "src/util/stats.h"

namespace jockey {

class CompletionTable {
 public:
  // `allocations` is the token grid simulated offline (strictly increasing, >= 1
  // each); progress is bucketed into `num_buckets` cells over [0, 1].
  CompletionTable(std::vector<int> allocations, int num_buckets = 50);

  // Records one observation: at progress `p` with grid allocation index `alloc_index`,
  // `remaining_seconds` remained until completion. Requires !frozen().
  void AddSample(double p, int alloc_index, double remaining_seconds);

  // Compacts the per-cell sample sets into the dense read-only representation and
  // releases the mutable cells. Predictions are unchanged bit-for-bit; after this the
  // table accepts no further samples. Idempotent.
  void Freeze();
  bool frozen() const { return frozen_; }

  // Predicted remaining seconds at progress `p` under `allocation` tokens, at the
  // given sample quantile (the paper cares about worst-case-ish completion, so the
  // control loop queries a high quantile). Allocation is clamped to the grid range
  // and interpolated linearly between grid points. Identical before and after
  // Freeze(); only the frozen path is thread-safe.
  double Predict(double p, double allocation, double quantile) const;

  const std::vector<int>& allocations() const { return allocations_; }
  int num_buckets() const { return num_buckets_; }

  // The progress bucket `p` falls into. Predict(p, a, q) depends on p only through
  // this index, which is what makes per-bucket memoization of prediction columns
  // exact (decision_cache.h): two progress values in the same bucket produce
  // bit-identical predictions at every allocation.
  int BucketIndex(double p) const { return BucketOf(p); }

  // Total samples stored (diagnostics).
  size_t TotalSamples() const;

  // Text serialization of the quantile summaries actually used at runtime.
  void SaveSummary(std::ostream& os, const std::vector<double>& quantiles) const;

  // Binary serialization of the frozen representation (requires frozen()). Load
  // returns nullopt on malformed or truncated input. Save(Load(x)) == x, and a loaded
  // table predicts bit-identically to the one saved.
  void Save(std::ostream& os) const;
  static std::optional<CompletionTable> Load(std::istream& is);

 private:
  // A frozen cell: a range of `frozen_samples_` (already sorted ascending). Empty
  // cells point at their fallback donor's range; a completely empty column has
  // count == 0 and predicts 0.
  struct CellRange {
    size_t offset = 0;
    size_t count = 0;
  };

  int BucketOf(double p) const;
  size_t CellIndex(int bucket, int ai) const {
    return static_cast<size_t>(bucket) * allocations_.size() + static_cast<size_t>(ai);
  }
  // Remaining-time quantile at exactly grid column `ai`, searching nearby buckets if
  // the target bucket holds no samples (mutable path) or using the pre-resolved
  // fallback range (frozen path).
  double CellQuantile(int bucket, int ai, double quantile) const;
  // The bucket whose samples answer queries for (bucket, ai): itself when populated,
  // else the nearest populated bucket in the column, preferring lower (its larger
  // remaining time over-estimates, which is the safe direction). -1 if the whole
  // column is empty. `populated` is indexed like cells_.
  int ResolveFallbackBucket(int bucket, int ai, const std::vector<char>& populated) const;

  std::vector<int> allocations_;
  int num_buckets_;
  // Mutable phase: cells_[bucket * allocations_.size() + alloc_index]. Cleared by
  // Freeze().
  std::vector<EmpiricalDistribution> cells_;
  // Frozen phase.
  bool frozen_ = false;
  std::vector<double> frozen_samples_;  // per-cell sorted runs, concatenated
  std::vector<CellRange> frozen_cells_;  // indexed like cells_
  size_t frozen_total_samples_ = 0;  // distinct stored samples (fallback sharing excluded)
};

}  // namespace jockey

#endif  // SRC_SIM_COMPLETION_TABLE_H_
