#include "src/sim/job_simulator.h"

#include <algorithm>
#include <cassert>

namespace jockey {

namespace {
// Event payload for the typed queue: a flat task id, or kSampleEvent for the
// periodic progress sample.
constexpr int32_t kSampleEvent = -1;
}  // namespace

JobSimulator::JobSimulator(const JobGraph& graph, const JobProfile& profile,
                           JobSimulatorConfig config)
    : graph_(&graph), profile_(&profile), config_(config), tracker_(graph) {
  assert(graph.num_stages() == profile.num_stages());
}

SimRunResult JobSimulator::Run(int allocation, Rng& rng,
                               const ProgressCallback& on_progress) const {
  assert(allocation >= 1);
  int s_count = graph_->num_stages();

  SimEventQueue<int32_t> eq(config_.event_engine);
  DependencyTracker::State state(tracker_);
  int free_slots = allocation;
  double finish_time = 0.0;

  SimRunResult result;
  result.stage_first_start.assign(static_cast<size_t>(s_count), -1.0);
  result.stage_last_end.assign(static_cast<size_t>(s_count), 0.0);

  // FIFO ready queue (head index avoids O(n) pops).
  std::vector<int> ready;
  ready.reserve(static_cast<size_t>(tracker_.total_tasks()));
  size_t ready_head = 0;

  auto start_task = [&](int task) {
    int s = tracker_.StageOf(task);
    const StageProfile& sp = profile_->stage(s);
    double init = 0.0;
    if (sp.queue_times.count() > 0) {
      init = std::min(sp.queue_times.Sample(rng), config_.init_latency_cap_seconds);
    }
    double total = init;
    // Failed attempts lose a uniform fraction of a (re-sampled) execution; the slot
    // stays occupied throughout, matching restart-in-place semantics.
    int failed = 0;
    while (config_.inject_failures && failed < 4 && rng.Bernoulli(sp.failure_prob)) {
      total += sp.task_runtimes.Sample(rng) * rng.Uniform();
      ++failed;
    }
    total += sp.task_runtimes.Sample(rng);
    if (result.stage_first_start[static_cast<size_t>(s)] < 0.0) {
      result.stage_first_start[static_cast<size_t>(s)] = eq.now();
    }
    eq.ScheduleAfter(total, static_cast<int32_t>(task));
  };

  auto drain_ready = [&]() {
    state.TakeNewlyReadyInto(ready);
    while (free_slots > 0 && ready_head < ready.size()) {
      int task = ready[ready_head++];
      --free_slots;
      start_task(task);
    }
  };

  auto on_task_done = [&](int task) {
    int s = tracker_.StageOf(task);
    ++free_slots;
    result.stage_last_end[static_cast<size_t>(s)] = eq.now();
    state.MarkDone(task);
    if (state.AllDone()) {
      finish_time = eq.now();
    }
    drain_ready();
  };

  auto sample = [&]() {
    if (state.AllDone()) {
      return;
    }
    on_progress(eq.now(), state.FracCompleteAll());
    eq.ScheduleAfter(config_.sample_period_seconds, kSampleEvent);
  };
  if (on_progress) {
    sample();
  }

  drain_ready();
  int32_t ev = 0;
  while (eq.PopNext(ev)) {
    if (ev == kSampleEvent) {
      sample();
    } else {
      on_task_done(ev);
    }
  }
  assert(state.AllDone() && "simulation ended with unfinished tasks");
  // eq.now() may sit past completion if a progress sample fired last; use the time the
  // final task finished.
  result.completion_seconds = finish_time;
  return result;
}

}  // namespace jockey
