#include "src/sim/table_cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace jockey {

uint64_t HashBytes(const void* data, size_t size, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashString(const std::string& s, uint64_t seed) {
  return HashBytes(s.data(), s.size(), seed);
}

TableCache::TableCache(std::string dir) : dir_(std::move(dir)) {}

std::string TableCache::PathForKey(uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.cpa", static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

std::optional<CompletionTable> TableCache::TryLoad(uint64_t key) const {
  if (!enabled()) {
    return std::nullopt;
  }
  std::ifstream in(PathForKey(key), std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  return CompletionTable::Load(in);
}

bool TableCache::Store(uint64_t key, const CompletionTable& table) const {
  if (!enabled() || !table.frozen()) {
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return false;
  }
  std::string path = PathForKey(key);
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    table.Save(out);
    if (!out.good()) {
      return false;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace jockey
