#include "src/sim/table_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/fault/fault_injector.h"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace jockey {

namespace fs = std::filesystem;

uint64_t HashBytes(const void* data, size_t size, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashString(const std::string& s, uint64_t seed) {
  return HashBytes(s.data(), s.size(), seed);
}

TableCache::TableCache(std::string dir, TableCacheOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {}

std::string TableCache::PathForKey(uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.cpa", static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

TableCache::LoadResult TableCache::Load(uint64_t key) const {
  const Observer& obs = options_.observer;
  LoadResult result;
  auto report = [&](CacheCode code, uint64_t bytes, std::string message,
                    const char* counter) {
    result.status.code = code;
    result.status.message = std::move(message);
    obs.Emit(0.0, TableCacheLookupEvent{key, code, bytes});
    obs.Count(counter);
  };
  if (!enabled()) {
    result.status.code = CacheCode::kDisabled;
    return result;  // a disabled cache is silent: no event, no counter
  }
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->TableFaultActive(0.0)) {
    report(CacheCode::kIoError, 0, "injected table-load fault", "table_cache.io_errors");
    return result;
  }
  std::string path = PathForKey(key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    report(CacheCode::kMiss, 0, "", "table_cache.misses");
    return result;
  }
  uint64_t bytes = fs::file_size(path, ec);
  if (ec) {
    bytes = 0;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    report(CacheCode::kIoError, 0, "cannot open " + path, "table_cache.io_errors");
    return result;
  }
  std::optional<CompletionTable> table = CompletionTable::Load(in);
  if (!table.has_value()) {
    report(CacheCode::kCorrupt, bytes, "corrupt entry " + path, "table_cache.corrupt");
    return result;
  }
  if (options_.max_bytes > 0) {
    // Refresh the entry's LRU position so pruning sees it as recently used.
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  }
  report(CacheCode::kHit, bytes, "", "table_cache.hits");
  result.table = std::move(table);
  return result;
}

CacheStatus TableCache::Store(uint64_t key, const CompletionTable& table) const {
  const Observer& obs = options_.observer;
  auto report = [&](CacheCode code, uint64_t bytes, std::string message,
                    const char* counter) {
    obs.Emit(0.0, TableCacheStoreEvent{key, code, bytes});
    obs.Count(counter);
    return CacheStatus{code, std::move(message)};
  };
  if (!enabled()) {
    return CacheStatus{CacheCode::kDisabled, ""};
  }
  if (!table.frozen()) {
    return report(CacheCode::kIoError, 0, "refusing to store a non-frozen table",
                  "table_cache.io_errors");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return report(CacheCode::kIoError, 0, "cannot create " + dir_, "table_cache.io_errors");
  }
  std::string path = PathForKey(key);
  // Unique temp name (pid + process-wide counter): concurrent writers of the same
  // key — two builds racing on one cache directory — each stage into their own file,
  // so neither can rename the other's half-written bytes into place. The atomic
  // rename below then guarantees a reader only ever sees a complete entry.
  static std::atomic<uint64_t> tmp_counter{0};
  std::string tmp = path + ".tmp-" + std::to_string(static_cast<long long>(getpid())) +
                    "-" + std::to_string(tmp_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return report(CacheCode::kIoError, 0, "cannot write " + tmp, "table_cache.io_errors");
    }
    table.Save(out);
    // Push everything to the OS before the rename; a failure here (disk full) must
    // surface as an io_error, not a truncated entry published under the final name.
    out.flush();
    if (!out.good()) {
      fs::remove(tmp, ec);
      return report(CacheCode::kIoError, 0, "short write to " + tmp, "table_cache.io_errors");
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return report(CacheCode::kIoError, 0, "cannot rename into " + path,
                  "table_cache.io_errors");
  }
  uint64_t bytes = fs::file_size(path, ec);
  CacheStatus status = report(CacheCode::kStored, ec ? 0 : bytes, "", "table_cache.stores");
  PruneToLimit();
  return status;
}

int TableCache::PruneToLimit() const {
  if (!enabled() || options_.max_bytes == 0) {
    return 0;
  }
  struct Entry {
    fs::file_time_type mtime;
    std::string path;
    uint64_t key = 0;
    uint64_t bytes = 0;
  };
  std::vector<Entry> entries;
  uint64_t total = 0;
  std::error_code ec;
  for (const fs::directory_entry& de : fs::directory_iterator(dir_, ec)) {
    if (ec) {
      return 0;
    }
    if (!de.is_regular_file(ec) || de.path().extension() != ".cpa") {
      continue;
    }
    Entry entry;
    entry.path = de.path().string();
    entry.mtime = de.last_write_time(ec);
    entry.bytes = de.file_size(ec);
    entry.key = std::strtoull(de.path().stem().string().c_str(), nullptr, 16);
    total += entry.bytes;
    entries.push_back(std::move(entry));
  }
  if (total <= options_.max_bytes || entries.empty()) {
    return 0;
  }
  // Oldest first; ties broken by path so pruning order is reproducible.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
  });
  const Observer& obs = options_.observer;
  int evicted = 0;
  // Keep at least the newest entry: a cache whose budget is below one table would
  // otherwise evict everything it stores, including the entry it just wrote.
  for (size_t i = 0; i + 1 < entries.size() && total > options_.max_bytes; ++i) {
    const Entry& victim = entries[i];
    if (!fs::remove(victim.path, ec) || ec) {
      continue;
    }
    total -= victim.bytes;
    ++evicted;
    obs.Emit(0.0, TableCacheEvictEvent{victim.key, victim.bytes});
    obs.Count("table_cache.evictions");
    obs.Count("table_cache.bytes_evicted", static_cast<int64_t>(victim.bytes));
  }
  return evicted;
}

}  // namespace jockey
