#include "src/sim/completion_table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>

namespace jockey {

CompletionTable::CompletionTable(std::vector<int> allocations, int num_buckets)
    : allocations_(std::move(allocations)), num_buckets_(num_buckets) {
  assert(!allocations_.empty());
  assert(num_buckets_ >= 1);
  for (size_t i = 1; i < allocations_.size(); ++i) {
    assert(allocations_[i] > allocations_[i - 1] && "allocation grid must increase");
  }
  cells_.resize(static_cast<size_t>(num_buckets_) * allocations_.size());
}

int CompletionTable::BucketOf(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  int b = static_cast<int>(p * num_buckets_);
  return std::min(b, num_buckets_ - 1);
}

void CompletionTable::AddSample(double p, int alloc_index, double remaining_seconds) {
  assert(alloc_index >= 0 && alloc_index < static_cast<int>(allocations_.size()));
  cells_[static_cast<size_t>(BucketOf(p)) * allocations_.size() +
         static_cast<size_t>(alloc_index)]
      .Add(remaining_seconds);
}

double CompletionTable::CellQuantile(int bucket, int ai, double quantile) const {
  auto cell = [&](int b) -> const EmpiricalDistribution& {
    return cells_[static_cast<size_t>(b) * allocations_.size() + static_cast<size_t>(ai)];
  };
  if (cell(bucket).count() > 0) {
    return cell(bucket).Quantile(quantile);
  }
  // The bucket may be unobserved at this allocation (e.g. very late progress at a
  // tiny allocation between two samples). Search outward; a lower bucket's remaining
  // time over-estimates (safe), a higher bucket's under-estimates, so prefer lower.
  for (int d = 1; d < num_buckets_; ++d) {
    if (bucket - d >= 0 && cell(bucket - d).count() > 0) {
      return cell(bucket - d).Quantile(quantile);
    }
    if (bucket + d < num_buckets_ && cell(bucket + d).count() > 0) {
      return cell(bucket + d).Quantile(quantile);
    }
  }
  return 0.0;  // column is completely empty
}

double CompletionTable::Predict(double p, double allocation, double quantile) const {
  int bucket = BucketOf(p);
  double a = std::clamp(allocation, static_cast<double>(allocations_.front()),
                        static_cast<double>(allocations_.back()));
  // Locate the surrounding grid columns.
  size_t hi = 0;
  while (hi < allocations_.size() && static_cast<double>(allocations_[hi]) < a) {
    ++hi;
  }
  if (hi == 0) {
    return CellQuantile(bucket, 0, quantile);
  }
  if (hi >= allocations_.size()) {
    return CellQuantile(bucket, static_cast<int>(allocations_.size()) - 1, quantile);
  }
  size_t lo = hi - 1;
  double a_lo = static_cast<double>(allocations_[lo]);
  double a_hi = static_cast<double>(allocations_[hi]);
  double frac = (a - a_lo) / (a_hi - a_lo);
  double q_lo = CellQuantile(bucket, static_cast<int>(lo), quantile);
  double q_hi = CellQuantile(bucket, static_cast<int>(hi), quantile);
  return q_lo * (1.0 - frac) + q_hi * frac;
}

size_t CompletionTable::TotalSamples() const {
  size_t total = 0;
  for (const auto& c : cells_) {
    total += c.count();
  }
  return total;
}

void CompletionTable::SaveSummary(std::ostream& os, const std::vector<double>& quantiles) const {
  os << "bucket";
  for (int a : allocations_) {
    for (double q : quantiles) {
      os << ",a" << a << "_q" << q;
    }
  }
  os << "\n";
  for (int b = 0; b < num_buckets_; ++b) {
    os << b;
    for (size_t ai = 0; ai < allocations_.size(); ++ai) {
      for (double q : quantiles) {
        os << "," << CellQuantile(b, static_cast<int>(ai), q);
      }
    }
    os << "\n";
  }
}

}  // namespace jockey
