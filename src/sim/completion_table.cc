#include "src/sim/completion_table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

namespace jockey {

namespace {

// Binary framing for Save/Load. Little-endian host assumption, as with the rest of
// the text/binary artifacts this reproduction writes and reads on the same machine.
constexpr char kMagic[8] = {'J', 'C', 'K', 'T', 'B', 'L', '0', '1'};

template <typename T>
void WritePod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return is.good();
}

}  // namespace

CompletionTable::CompletionTable(std::vector<int> allocations, int num_buckets)
    : allocations_(std::move(allocations)), num_buckets_(num_buckets) {
  assert(!allocations_.empty());
  assert(num_buckets_ >= 1);
  for (size_t i = 1; i < allocations_.size(); ++i) {
    assert(allocations_[i] > allocations_[i - 1] && "allocation grid must increase");
  }
  cells_.resize(static_cast<size_t>(num_buckets_) * allocations_.size());
}

int CompletionTable::BucketOf(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  int b = static_cast<int>(p * num_buckets_);
  return std::min(b, num_buckets_ - 1);
}

void CompletionTable::AddSample(double p, int alloc_index, double remaining_seconds) {
  assert(!frozen_ && "cannot add samples to a frozen table");
  assert(alloc_index >= 0 && alloc_index < static_cast<int>(allocations_.size()));
  cells_[CellIndex(BucketOf(p), alloc_index)].Add(remaining_seconds);
}

int CompletionTable::ResolveFallbackBucket(int bucket, int ai,
                                           const std::vector<char>& populated) const {
  if (populated[CellIndex(bucket, ai)]) {
    return bucket;
  }
  // The bucket may be unobserved at this allocation (e.g. very late progress at a
  // tiny allocation between two samples). Search outward; a lower bucket's remaining
  // time over-estimates (safe), a higher bucket's under-estimates, so prefer lower.
  for (int d = 1; d < num_buckets_; ++d) {
    if (bucket - d >= 0 && populated[CellIndex(bucket - d, ai)]) {
      return bucket - d;
    }
    if (bucket + d < num_buckets_ && populated[CellIndex(bucket + d, ai)]) {
      return bucket + d;
    }
  }
  return -1;  // column is completely empty
}

void CompletionTable::Freeze() {
  if (frozen_) {
    return;
  }
  std::vector<char> populated(cells_.size(), 0);
  for (size_t i = 0; i < cells_.size(); ++i) {
    populated[i] = cells_[i].count() > 0 ? 1 : 0;
  }
  // First pass: lay the populated cells' sorted samples into one flat buffer.
  frozen_total_samples_ = 0;
  for (const auto& cell : cells_) {
    frozen_total_samples_ += cell.count();
  }
  frozen_samples_.clear();
  frozen_samples_.reserve(frozen_total_samples_);
  std::vector<CellRange> own_range(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    own_range[i].offset = frozen_samples_.size();
    own_range[i].count = cells_[i].count();
    const std::vector<double>& samples = cells_[i].samples();
    size_t begin = frozen_samples_.size();
    frozen_samples_.insert(frozen_samples_.end(), samples.begin(), samples.end());
    std::sort(frozen_samples_.begin() + static_cast<ptrdiff_t>(begin), frozen_samples_.end());
  }
  // Second pass: resolve the empty-bucket fallback once, so queries never search.
  frozen_cells_.assign(cells_.size(), CellRange{});
  for (int b = 0; b < num_buckets_; ++b) {
    for (int ai = 0; ai < static_cast<int>(allocations_.size()); ++ai) {
      int source = ResolveFallbackBucket(b, ai, populated);
      if (source >= 0) {
        frozen_cells_[CellIndex(b, ai)] = own_range[CellIndex(source, ai)];
      }
    }
  }
  cells_.clear();
  cells_.shrink_to_fit();
  frozen_ = true;
}

double CompletionTable::CellQuantile(int bucket, int ai, double quantile) const {
  if (frozen_) {
    const CellRange& range = frozen_cells_[CellIndex(bucket, ai)];
    if (range.count == 0) {
      return 0.0;
    }
    const double* samples = frozen_samples_.data() + range.offset;
    if (range.count == 1) {
      return samples[0];
    }
    // Same linear-interpolated quantile as EmpiricalDistribution::Quantile, over the
    // pre-sorted range: two lookups plus interpolation, no allocation.
    double q = std::clamp(quantile, 0.0, 1.0);
    double pos = q * static_cast<double>(range.count - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, range.count - 1);
    double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  }

  auto cell = [&](int b) -> const EmpiricalDistribution& { return cells_[CellIndex(b, ai)]; };
  if (cell(bucket).count() > 0) {
    return cell(bucket).Quantile(quantile);
  }
  for (int d = 1; d < num_buckets_; ++d) {
    if (bucket - d >= 0 && cell(bucket - d).count() > 0) {
      return cell(bucket - d).Quantile(quantile);
    }
    if (bucket + d < num_buckets_ && cell(bucket + d).count() > 0) {
      return cell(bucket + d).Quantile(quantile);
    }
  }
  return 0.0;  // column is completely empty
}

double CompletionTable::Predict(double p, double allocation, double quantile) const {
  int bucket = BucketOf(p);
  double a = std::clamp(allocation, static_cast<double>(allocations_.front()),
                        static_cast<double>(allocations_.back()));
  // Locate the surrounding grid columns.
  size_t hi = 0;
  while (hi < allocations_.size() && static_cast<double>(allocations_[hi]) < a) {
    ++hi;
  }
  if (hi == 0) {
    return CellQuantile(bucket, 0, quantile);
  }
  if (hi >= allocations_.size()) {
    return CellQuantile(bucket, static_cast<int>(allocations_.size()) - 1, quantile);
  }
  size_t lo = hi - 1;
  double a_lo = static_cast<double>(allocations_[lo]);
  double a_hi = static_cast<double>(allocations_[hi]);
  double frac = (a - a_lo) / (a_hi - a_lo);
  double q_lo = CellQuantile(bucket, static_cast<int>(lo), quantile);
  double q_hi = CellQuantile(bucket, static_cast<int>(hi), quantile);
  return q_lo * (1.0 - frac) + q_hi * frac;
}

size_t CompletionTable::TotalSamples() const {
  if (frozen_) {
    return frozen_total_samples_;
  }
  size_t total = 0;
  for (const auto& c : cells_) {
    total += c.count();
  }
  return total;
}

void CompletionTable::SaveSummary(std::ostream& os, const std::vector<double>& quantiles) const {
  os << "bucket";
  for (int a : allocations_) {
    for (double q : quantiles) {
      os << ",a" << a << "_q" << q;
    }
  }
  os << "\n";
  for (int b = 0; b < num_buckets_; ++b) {
    os << b;
    for (size_t ai = 0; ai < allocations_.size(); ++ai) {
      for (double q : quantiles) {
        os << "," << CellQuantile(b, static_cast<int>(ai), q);
      }
    }
    os << "\n";
  }
}

void CompletionTable::Save(std::ostream& os) const {
  assert(frozen_ && "only frozen tables serialize");
  os.write(kMagic, sizeof(kMagic));
  WritePod(os, static_cast<uint32_t>(num_buckets_));
  WritePod(os, static_cast<uint32_t>(allocations_.size()));
  for (int a : allocations_) {
    WritePod(os, static_cast<int32_t>(a));
  }
  WritePod(os, static_cast<uint64_t>(frozen_total_samples_));
  WritePod(os, static_cast<uint64_t>(frozen_samples_.size()));
  os.write(reinterpret_cast<const char*>(frozen_samples_.data()),
           static_cast<std::streamsize>(frozen_samples_.size() * sizeof(double)));
  for (const CellRange& range : frozen_cells_) {
    WritePod(os, static_cast<uint64_t>(range.offset));
    WritePod(os, static_cast<uint64_t>(range.count));
  }
}

std::optional<CompletionTable> CompletionTable::Load(std::istream& is) {
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  if (!is.good() || !std::equal(magic, magic + sizeof(magic), kMagic)) {
    return std::nullopt;
  }
  uint32_t num_buckets = 0;
  uint32_t num_allocs = 0;
  if (!ReadPod(is, &num_buckets) || !ReadPod(is, &num_allocs) || num_buckets == 0 ||
      num_allocs == 0 || num_buckets > 1u << 20 || num_allocs > 1u << 20) {
    return std::nullopt;
  }
  std::vector<int> allocations(num_allocs);
  for (uint32_t i = 0; i < num_allocs; ++i) {
    int32_t a = 0;
    if (!ReadPod(is, &a) || (i > 0 && a <= allocations[i - 1])) {
      return std::nullopt;
    }
    allocations[i] = a;
  }
  uint64_t total_samples = 0;
  uint64_t buffer_size = 0;
  if (!ReadPod(is, &total_samples) || !ReadPod(is, &buffer_size) ||
      buffer_size > (1ull << 32) || total_samples > buffer_size) {
    return std::nullopt;
  }
  CompletionTable table(std::move(allocations), static_cast<int>(num_buckets));
  table.frozen_samples_.resize(buffer_size);
  is.read(reinterpret_cast<char*>(table.frozen_samples_.data()),
          static_cast<std::streamsize>(buffer_size * sizeof(double)));
  if (!is.good() && buffer_size > 0) {
    return std::nullopt;
  }
  size_t num_cells = static_cast<size_t>(num_buckets) * num_allocs;
  table.frozen_cells_.resize(num_cells);
  for (size_t i = 0; i < num_cells; ++i) {
    uint64_t offset = 0;
    uint64_t count = 0;
    if (!ReadPod(is, &offset) || !ReadPod(is, &count) || count > buffer_size ||
        offset > buffer_size - count) {
      return std::nullopt;
    }
    table.frozen_cells_[i] = CellRange{static_cast<size_t>(offset), static_cast<size_t>(count)};
  }
  table.frozen_total_samples_ = static_cast<size_t>(total_samples);
  table.cells_.clear();
  table.cells_.shrink_to_fit();
  table.frozen_ = true;
  return table;
}

}  // namespace jockey
