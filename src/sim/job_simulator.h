// Jockey's offline job simulator (Section 4.1).
//
// "The job simulator takes as input these statistics, along with the job's algebra
// (list of stages, tasks and their dependencies), and simulates events in the
// execution of the job. Events include allocating tasks to machines, restarting
// failed tasks and scheduling tasks as their inputs become available. This simulator
// captures important features of the job's performance such as outliers ... and
// barriers ..., but does not simulate all aspects of the system, such as input size
// variation and the scheduling of duplicate tasks."
//
// This is deliberately a *simpler* model than the cluster simulator in src/cluster/:
// no spare tokens, no eviction, no contention, no machine heterogeneity. The gap
// between the two is the model error Jockey's control loop must absorb.

#ifndef SRC_SIM_JOB_SIMULATOR_H_
#define SRC_SIM_JOB_SIMULATOR_H_

#include <functional>
#include <vector>

#include "src/dag/dependency_tracker.h"
#include "src/dag/job_graph.h"
#include "src/dag/profile.h"
#include "src/util/calendar_queue.h"
#include "src/util/event_queue.h"
#include "src/util/rng.h"

namespace jockey {

struct JobSimulatorConfig {
  // Whether to inject task failures from the profile's per-stage failure probability.
  bool inject_failures = true;
  // Per-task scheduling/initialization overhead is sampled from the profile's stage
  // queueing distribution and capped here (large queueing in the training run was
  // caused by token contention, which the simulator models through the allocation).
  double init_latency_cap_seconds = 8.0;
  // Period at which the progress callback fires.
  double sample_period_seconds = 15.0;
  // Which event-queue engine Run() uses. Bit-identical results on either; the
  // legacy heap is kept for differential tests and the BENCH_sim.json baseline.
  EventEngine event_engine = EventEngine::kCalendar;
};

// Result of one simulated execution.
struct SimRunResult {
  double completion_seconds = 0.0;
  // First task start and last task end per stage, for minstage-style indicators.
  std::vector<double> stage_first_start;
  std::vector<double> stage_last_end;
};

// Simulates executions of one job at a fixed token allocation.
//
// Construction precomputes the task dependency structure; Run() can then be invoked
// many times cheaply (the builder performs hundreds of Monte Carlo runs per job).
class JobSimulator {
 public:
  // Called every sample_period with the simulation time and the per-stage fraction of
  // completed tasks; this is how the C(p, a) builder observes progress.
  using ProgressCallback =
      std::function<void(SimTime now, const std::vector<double>& frac_complete)>;

  JobSimulator(const JobGraph& graph, const JobProfile& profile,
               JobSimulatorConfig config = JobSimulatorConfig());

  // Simulates one execution with `allocation` tokens (concurrent task slots).
  // Requires allocation >= 1. Deterministic for a fixed rng state.
  SimRunResult Run(int allocation, Rng& rng, const ProgressCallback& on_progress = nullptr) const;

  const JobGraph& graph() const { return *graph_; }
  const JobProfile& profile() const { return *profile_; }

 private:
  const JobGraph* graph_;
  const JobProfile* profile_;
  JobSimulatorConfig config_;
  DependencyTracker tracker_;
};

}  // namespace jockey

#endif  // SRC_SIM_JOB_SIMULATOR_H_
