#include "src/cluster/cluster_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/fault/fault_injector.h"
#include "src/obs/prof/profiler.h"
#include "src/obs/timeseries/timeseries.h"

namespace jockey {

std::string ValidateClusterConfig(const ClusterConfig& config) {
  if (config.num_machines <= 0) return "num_machines must be > 0";
  if (config.slots_per_machine <= 0) return "slots_per_machine must be > 0";
  if (config.machine_speed_sigma < 0.0) return "machine_speed_sigma must be >= 0";
  if (config.contention_threshold < 0.0) return "contention_threshold must be >= 0";
  if (config.contention_slope < 0.0) return "contention_slope must be >= 0";
  if (config.machine_failure_rate_per_hour < 0.0) {
    return "machine_failure_rate_per_hour must be >= 0";
  }
  if (config.machine_recovery_seconds <= 0.0) {
    return "machine_recovery_seconds must be > 0";
  }
  if (config.scheduling_delay_seconds < 0.0) {
    return "scheduling_delay_seconds must be >= 0";
  }
  if (config.speculation_slowdown < 1.0) return "speculation_slowdown must be >= 1";
  if (config.speculation_min_samples < 1) return "speculation_min_samples must be >= 1";
  if (config.speculation_check_period_seconds <= 0.0) {
    return "speculation_check_period_seconds must be > 0";
  }
  if (config.speculation_max_per_task < 0) return "speculation_max_per_task must be >= 0";
  if (config.superhigh_pressure_factor < 1.0) {
    return "superhigh_pressure_factor must be >= 1";
  }
  const BackgroundLoadParams& bg = config.background;
  if (bg.mean_utilization < 0.0 || bg.mean_utilization > 1.5) {
    return "background.mean_utilization must be in [0, 1.5]";
  }
  if (bg.volatility < 0.0) return "background.volatility must be >= 0";
  if (bg.reversion < 0.0) return "background.reversion must be >= 0";
  if (bg.update_period_seconds <= 0.0) {
    return "background.update_period_seconds must be > 0";
  }
  if (bg.min_utilization < 0.0 || bg.max_utilization > 1.5 ||
      bg.min_utilization > bg.max_utilization) {
    return "background.min/max_utilization must satisfy 0 <= min <= max <= 1.5";
  }
  if (bg.overload_rate_per_hour < 0.0) {
    return "background.overload_rate_per_hour must be >= 0";
  }
  if (bg.overload_duration_seconds < 0.0) {
    return "background.overload_duration_seconds must be >= 0";
  }
  return std::string();
}

ClusterSimulator::ClusterSimulator(const ClusterConfig& config)
    : config_(config),
      eq_(config.event_engine),
      rng_(config.seed),
      background_(config.background, Rng(config.seed).Fork()) {
  const std::string problem = ValidateClusterConfig(config);
  if (!problem.empty()) {
    throw std::invalid_argument("ClusterConfig: " + problem);
  }
  machines_.resize(static_cast<size_t>(config_.num_machines));
  for (auto& m : machines_) {
    m.speed = rng_.LogNormal(0.0, config_.machine_speed_sigma);
  }
}

ClusterSimulator::~ClusterSimulator() = default;

int ClusterSimulator::TotalUpSlots() const { return UpSlots(); }

int ClusterSimulator::UpSlots() const {
  int up = 0;
  for (const auto& m : machines_) {
    if (m.up) {
      ++up;
    }
  }
  return up * config_.slots_per_machine;
}

int ClusterSimulator::SubmitJob(const JobTemplate& job, const JobSubmission& opts) {
  int job_id = static_cast<int>(jobs_.size());
  jobs_.emplace_back();
  JobState& state = jobs_.back();
  state.id = job_id;
  state.tmpl = &job;
  state.opts = opts;
  state.tracker = std::make_unique<DependencyTracker>(job.graph);
  state.rng = Rng(opts.seed);
  state.guaranteed_tokens = std::clamp(opts.guaranteed_tokens, 0, opts.max_guaranteed_tokens);
  state.records.resize(static_cast<size_t>(state.tracker->total_tasks()));
  state.ever_ready.assign(static_cast<size_t>(state.tracker->total_tasks()), false);
  state.stage_exec_stats.resize(static_cast<size_t>(job.graph.num_stages()));
  state.speculation_budget_used.assign(static_cast<size_t>(state.tracker->total_tasks()), 0);
  for (int t = 0; t < state.tracker->total_tasks(); ++t) {
    auto& rec = state.records[static_cast<size_t>(t)];
    rec.id.stage = state.tracker->StageOf(t);
    rec.id.index = state.tracker->IndexOf(t);
  }
  state.result.trace.job_name = job.name();
  state.result.trace.submit_time = opts.submit_time;
  ++unfinished_jobs_;
  obs_.Emit(opts.submit_time, JobSubmitEvent{job_id, state.guaranteed_tokens});
  ++tallies_.jobs_submitted;
  SimEvent ev;
  ev.kind = SimEvent::Kind::kStartJob;
  ev.a = job_id;
  eq_.ScheduleAt(opts.submit_time, ev);
  return job_id;
}

void ClusterSimulator::Dispatch(const SimEvent& ev) {
  // One profiler region per dispatched event; disabled cost is a relaxed load and
  // a branch, the same budget the detached observer meets (BENCH_profile.json).
  prof::Scope dispatch_scope("sim_dispatch");
  switch (ev.kind) {
    case SimEvent::Kind::kStartJob:
      StartJob(ev.a);
      break;
    case SimEvent::Kind::kControlTick:
      ControlTick(ev.a);
      break;
    case SimEvent::Kind::kTaskEnd: {
      if (!arena_.Alive(ev.handle)) {
        break;  // stale: the attempt was already killed or superseded
      }
      if (ev.fails) {
        JobState& job = jobs_[static_cast<size_t>(ev.a)];
        ++job.result.task_failures;
        KillAttempt(job, ev.handle, KillReason::kTaskFailure);
        Reschedule();
      } else {
        OnTaskComplete(ev.a, ev.handle);
      }
      break;
    }
    case SimEvent::Kind::kMachineFailureTick:
      MachineFailureTick();
      break;
    case SimEvent::Kind::kMachineRecover:
      RecoverMachine(ev.a);
      if (unfinished_jobs_ > 0) {
        Reschedule();
      }
      break;
    case SimEvent::Kind::kBurstStart: {
      if (unfinished_jobs_ == 0) {
        break;
      }
      int killed = 0;
      int downed = 0;
      for (int machine = ev.a; machine < ev.b; ++machine) {
        if (FailMachine(machine, &killed)) {
          ++downed;
        }
      }
      if (downed > 0) {
        const FaultWindow& w =
            fault_injector_->plan().windows()[static_cast<size_t>(ev.handle)];
        obs_.Emit(eq_.now(),
                  FaultInjectedEvent{w.kind, static_cast<int>(ev.handle), -1, 0.0,
                                     static_cast<double>(downed),
                                     static_cast<double>(killed)});
        ++tallies_.fault_machine_bursts;
        Reschedule();
      }
      break;
    }
    case SimEvent::Kind::kBurstEnd:
      for (int machine = ev.a; machine < ev.b; ++machine) {
        RecoverMachine(machine);
      }
      if (unfinished_jobs_ > 0) {
        Reschedule();
      }
      break;
    case SimEvent::Kind::kFaultMark: {
      if (unfinished_jobs_ == 0) {
        break;
      }
      // Gray windows change no machine state; the mark makes their onset visible
      // in the trace (magnitude + fault-domain / period details).
      const FaultWindow& w =
          fault_injector_->plan().windows()[static_cast<size_t>(ev.handle)];
      const bool spike = w.kind == FaultKind::kAdversarialSpike;
      obs_.Emit(eq_.now(),
                FaultInjectedEvent{w.kind, static_cast<int>(ev.handle), -1, w.magnitude,
                                   spike ? w.period_seconds
                                         : static_cast<double>(w.first_machine),
                                   spike ? 0.0 : static_cast<double>(w.machine_count)});
      if (spike) {
        // The on-phase may already cover the window start; re-evaluate demand now
        // rather than waiting for the next cluster tick.
        Reschedule();
      }
      break;
    }
    case SimEvent::Kind::kClusterTick:
      ClusterTick();
      break;
    case SimEvent::Kind::kSpeculationTick:
      SpeculationTick();
      break;
  }
}

void ClusterSimulator::StartJob(int job_id) {
  JobState& job = jobs_[static_cast<size_t>(job_id)];
  job.dag = std::make_unique<DependencyTracker::State>(*job.tracker);
  job.started = true;
  job.last_alloc_change = eq_.now();
  DrainReady(job);
  if (job.opts.controller != nullptr) {
    ControlTick(job_id);
  } else {
    Reschedule();
  }
}

void ClusterSimulator::DrainReady(JobState& job) {
  ready_scratch_.clear();
  job.dag->TakeNewlyReadyInto(ready_scratch_);
  for (int t : ready_scratch_) {
    if (!job.ever_ready[static_cast<size_t>(t)]) {
      job.ever_ready[static_cast<size_t>(t)] = true;
      job.records[static_cast<size_t>(t)].ready_time = eq_.now();
    }
    job.pending.push_back(t);
    obs_.Emit(eq_.now(), TaskReadyEvent{job.id, job.tracker->StageOf(t), t, false});
  }
  // Compact the FIFO when the dead prefix dominates.
  if (job.pending_head > 1024 && job.pending_head * 2 > job.pending.size()) {
    job.pending.erase(job.pending.begin(),
                      job.pending.begin() + static_cast<int64_t>(job.pending_head));
    job.pending_head = 0;
  }
}

void ClusterSimulator::AccumulateGuaranteedSeconds(JobState& job) {
  job.result.guaranteed_token_seconds +=
      static_cast<double>(job.guaranteed_tokens) * (eq_.now() - job.last_alloc_change);
  job.last_alloc_change = eq_.now();
}

void ClusterSimulator::InjectReportFaults(JobState& job, JobRuntimeStatus& status) {
  // Record the truthful observation first: dropout/staleness windows replay from
  // this history, so the served snapshot is always something the job really looked
  // like at an earlier tick.
  job.report_history.push_back(
      ReportSnapshot{eq_.now(), status.frac_complete, status.completed_tasks});

  const FaultWindow* dropout =
      fault_injector_->Active(FaultKind::kReportDropout, eq_.now(), job.id);
  const FaultWindow* stale =
      dropout == nullptr
          ? fault_injector_->Active(FaultKind::kReportStale, eq_.now(), job.id)
          : nullptr;
  if (dropout != nullptr || stale != nullptr) {
    // Dropout: reports froze when the window opened. Staleness: reports arrive
    // `magnitude` seconds late. Both serve the newest snapshot at or before the
    // cutoff; with none, the controller is fully blind since submission.
    const double cutoff = dropout != nullptr ? dropout->start_seconds
                                             : eq_.now() - stale->magnitude;
    const ReportSnapshot* snap = nullptr;
    for (const ReportSnapshot& s : job.report_history) {
      if (s.time <= cutoff) {
        snap = &s;
      } else {
        break;
      }
    }
    if (snap != nullptr) {
      status.frac_complete = snap->frac;
      status.completed_tasks = snap->completed;
      status.report_age_seconds = eq_.now() - snap->time;
    } else {
      std::fill(status.frac_complete.begin(), status.frac_complete.end(), 0.0);
      status.completed_tasks = 0;
      status.report_age_seconds = status.elapsed_seconds;
    }
    status.report_fresh = false;
    const FaultWindow& w = dropout != nullptr ? *dropout : *stale;
    obs_.Emit(eq_.now(),
              FaultInjectedEvent{w.kind, fault_injector_->IndexOf(w), job.id,
                                 w.magnitude, status.report_age_seconds, 0.0});
    ++tallies_.fault_report_faults;
    return;  // dropout/staleness dominates; noise on a frozen report is meaningless
  }

  const FaultWindow* noise =
      fault_injector_->Active(FaultKind::kReportNoise, eq_.now(), job.id);
  if (noise != nullptr) {
    for (double& frac : status.frac_complete) {
      frac = fault_injector_->PerturbFraction(*noise, frac);
    }
    obs_.Emit(eq_.now(),
              FaultInjectedEvent{noise->kind, fault_injector_->IndexOf(*noise),
                                 job.id, noise->magnitude, 0.0, 0.0});
    ++tallies_.fault_report_faults;
  }
}

void ClusterSimulator::ControlTick(int job_id) {
  JobState& job = jobs_[static_cast<size_t>(job_id)];
  if (job.finished) {
    return;
  }
  SimEvent next;
  next.kind = SimEvent::Kind::kControlTick;
  next.a = job_id;
  if (fault_injector_ != nullptr) {
    const FaultWindow* blackout =
        fault_injector_->Active(FaultKind::kControlBlackout, eq_.now(), job.id);
    if (blackout != nullptr) {
      // The controller is unreachable: no decision, the last granted allocation
      // holds until the next tick that gets through.
      obs_.Emit(eq_.now(),
                FaultInjectedEvent{blackout->kind, fault_injector_->IndexOf(*blackout),
                                   job.id, 0.0,
                                   static_cast<double>(job.guaranteed_tokens), 0.0});
      ++tallies_.fault_blackouts;
      eq_.ScheduleAfter(job.opts.control_period_seconds, next);
      return;
    }
  }
  JobRuntimeStatus status;
  status.now = eq_.now();
  status.elapsed_seconds = eq_.now() - job.opts.submit_time;
  status.frac_complete = job.dag->FracCompleteAll();
  status.guaranteed_tokens = job.guaranteed_tokens;
  status.running_tasks = job.running_guaranteed + job.running_spare;
  status.pending_tasks = static_cast<int>(job.pending.size() - job.pending_head);
  status.completed_tasks = job.dag->done_total();
  status.total_tasks = job.tracker->total_tasks();
  if (fault_injector_ != nullptr && fault_injector_->HasReportFaults()) {
    InjectReportFaults(job, status);
  }

  ControlDecision decision = job.opts.controller->OnTick(status);
  int new_g = std::clamp(decision.guaranteed_tokens, 0, job.opts.max_guaranteed_tokens);
  if (fault_injector_ != nullptr) {
    const FaultWindow* shortfall =
        fault_injector_->Active(FaultKind::kGrantShortfall, eq_.now(), job.id);
    if (shortfall != nullptr) {
      const int requested = new_g;
      new_g = FaultInjector::ShortfallGrant(*shortfall, requested);
      if (new_g != requested) {
        obs_.Emit(eq_.now(),
                  FaultInjectedEvent{shortfall->kind,
                                     fault_injector_->IndexOf(*shortfall), job.id,
                                     shortfall->magnitude,
                                     static_cast<double>(requested),
                                     static_cast<double>(new_g)});
        ++tallies_.fault_grant_shortfalls;
      }
    }
  }
  AccumulateGuaranteedSeconds(job);
  if (new_g != job.guaranteed_tokens) {
    obs_.Emit(eq_.now(), AllocationChangeEvent{job_id, job.guaranteed_tokens, new_g});
    ++tallies_.allocation_changes;
  }
  job.guaranteed_tokens = new_g;
  job.result.timeline.push_back(AllocationSample{eq_.now(), new_g, decision.raw_allocation,
                                                 status.running_tasks, job.running_spare});
  if (timeseries_ != nullptr) {
    // Policies without a completion model leave progress unset; fall back to the
    // task-count fraction so the timeline still shows movement. A negative
    // predicted-remaining stays negative: the recorder reads it as "no prediction"
    // and tracks deadline slack from elapsed time alone.
    const double ts_progress =
        decision.progress >= 0.0
            ? decision.progress
            : (status.total_tasks > 0
                   ? static_cast<double>(status.completed_tasks) /
                         static_cast<double>(status.total_tasks)
                   : 0.0);
    timeseries_->OnControlSample(job_id, eq_.now(), status.elapsed_seconds, ts_progress,
                                 decision.predicted_remaining_seconds, new_g);
  }
  Reschedule();
  eq_.ScheduleAfter(job.opts.control_period_seconds, next);
}

double ClusterSimulator::CurrentUtilization() const {
  // Contention pressure: slots actually running, plus a discounted term for queued
  // background demand (work waiting for slots still hammers the network and disks,
  // but less than running work). This is what makes an overloaded cluster slow every
  // running task, not just shrink the spare pool.
  double running = static_cast<double>(background_slots_);
  for (const auto& job : jobs_) {
    running += job.running_guaranteed + job.running_spare;
    if (job.opts.priority == PriorityClass::kSuperHigh) {
      // SuperHigh tasks win every local resource conflict, so each one degrades
      // co-located work beyond its own slot (Section 3.1's contention downside).
      running += (config_.superhigh_pressure_factor - 1.0) *
                 (job.running_guaranteed + job.running_spare);
    }
  }
  double queued = std::max(0, background_demand_ - background_slots_);
  int up = UpSlots();
  if (up == 0) {
    return 1.5;
  }
  double pressure = (running + 0.3 * queued) / static_cast<double>(up);
  return std::min(pressure, 1.5);
}

void ClusterSimulator::StartTask(JobState& job, int job_id, int flat_task, bool spare,
                                 bool speculative) {
  int stage = job.tracker->StageOf(flat_task);
  const StageRuntimeModel& model = job.tmpl->runtime[static_cast<size_t>(stage)];

  // Random placement across up machines; placement is for heterogeneity and failure
  // domains, aggregate capacity is enforced by the token accounting in Reschedule().
  int machine = -1;
  do {
    machine = static_cast<int>(rng_.UniformInt(0, config_.num_machines - 1));
  } while (!machines_[static_cast<size_t>(machine)].up);

  double dispatch = config_.scheduling_delay_seconds * (0.5 + job.rng.Exponential(1.0));
  double contention_excess = std::max(0.0, CurrentUtilization() - config_.contention_threshold);
  if (job.opts.priority == PriorityClass::kSuperHigh) {
    // SuperHigh tasks are largely shielded from contention: they run when ready and
    // win local resource conflicts (Section 3.1).
    contention_excess *= 0.25;
  }
  double contention = 1.0 + config_.contention_slope * contention_excess;
  double exec = model.SampleSeconds(job.rng) * job.opts.input_scale *
                machines_[static_cast<size_t>(machine)].speed * contention;
  if (fault_injector_ != nullptr) {
    // Gray failure: a slow-but-alive machine stretches the attempt's service time
    // without tripping any failure path — the runtime model still believes the
    // healthy speed.
    const double slowdown = fault_injector_->SlowdownFactor(eq_.now(), machine);
    if (slowdown != 1.0) {
      exec *= slowdown;
      ++tallies_.fault_machine_slowdowns;
    }
    // An adversarial spike oversubscribes the cluster: beyond squeezing spare
    // capacity (Reschedule below), tasks dispatched while the spike is on run
    // co-located with the surge and their service time stretches with it.
    const double spike = fault_injector_->SpikeBoost(eq_.now());
    if (spike > 0.0) {
      exec *= 1.0 + spike;
    }
  }
  bool fails = job.rng.Bernoulli(model.failure_prob);
  double lifetime = fails ? dispatch + exec * job.rng.Uniform() : dispatch + exec;

  AttemptArena::Handle handle =
      arena_.Allocate(job.active, flat_task, machine, eq_.now(), eq_.now() + dispatch,
                      eq_.now() + dispatch + exec, spare, speculative);
  if (spare) {
    ++job.running_spare;
  } else {
    ++job.running_guaranteed;
  }
  job.result.max_parallelism =
      std::max(job.result.max_parallelism, job.running_guaranteed + job.running_spare);
  obs_.Emit(eq_.now(), TaskDispatchEvent{job.id, stage, flat_task, machine, spare, speculative});
  ++tallies_.dispatches;
  if (spare) {
    ++tallies_.spare_dispatches;
  }

  SimEvent ev;
  ev.kind = SimEvent::Kind::kTaskEnd;
  ev.fails = fails;
  ev.a = job_id;
  ev.handle = handle;
  eq_.ScheduleAfter(lifetime, ev);
}

bool ClusterSimulator::HasRunningCopy(const JobState& job, int flat_task,
                                      uint32_t excluding_slot) const {
  for (uint32_t slot : job.active) {
    if (slot != excluding_slot && arena_.flat_task(slot) == flat_task) {
      return true;
    }
  }
  return false;
}

void ClusterSimulator::KillAttempt(JobState& job, AttemptArena::Handle handle,
                                   KillReason reason) {
  assert(arena_.Alive(handle));
  const uint32_t slot = AttemptArena::SlotOf(handle);
  const int flat_task = arena_.flat_task(slot);
  if (arena_.spare(slot)) {
    --job.running_spare;
  } else {
    --job.running_guaranteed;
  }
  auto& rec = job.records[static_cast<size_t>(flat_task)];
  ++rec.failed_attempts;
  rec.wasted_seconds += eq_.now() - arena_.attempt_start(slot);
  if (reason == KillReason::kSpareEviction) {
    ++job.result.evictions;
  }
  arena_.Release(handle, job.active);
  // Requeue unless another copy of the task still runs (a killed duplicate must not
  // resurrect a task its primary is already executing, and vice versa).
  bool requeued = !HasRunningCopy(job, flat_task, kNoSlot);
  if (requeued) {
    job.pending.push_back(flat_task);
  }
  obs_.Emit(eq_.now(), TaskKilledEvent{job.id, job.tracker->StageOf(flat_task), flat_task,
                                       reason, requeued});
  if (requeued) {
    obs_.Emit(eq_.now(), TaskReadyEvent{job.id, job.tracker->StageOf(flat_task), flat_task, true});
  }
  switch (reason) {
    case KillReason::kSpareEviction:
      ++tallies_.evictions;
      break;
    case KillReason::kTaskFailure:
      ++tallies_.task_failures;
      break;
    case KillReason::kMachineFailure:
      ++tallies_.machine_failure_kills;
      break;
  }
  if (requeued) {
    ++tallies_.reexecutions;
  }
}

void ClusterSimulator::OnTaskComplete(int job_id, AttemptArena::Handle handle) {
  JobState& job = jobs_[static_cast<size_t>(job_id)];
  assert(arena_.Alive(handle));  // Dispatch dropped stale handles already
  const uint32_t slot = AttemptArena::SlotOf(handle);
  const int flat_task = arena_.flat_task(slot);
  const SimTime exec_start = arena_.exec_start(slot);
  const bool spare = arena_.spare(slot);
  const bool speculative = arena_.speculative(slot);
  if (spare) {
    --job.running_spare;
    ++job.spare_completions;
  } else {
    --job.running_guaranteed;
  }
  arena_.Release(handle, job.active);
  if (speculative) {
    ++job.result.speculative_wins;
  }

  // Cancel any other copy of the task; its time is wasted work.
  kill_scratch_.clear();
  for (uint32_t other : job.active) {
    if (arena_.flat_task(other) == flat_task) {
      kill_scratch_.push_back(arena_.handle_of(other));
    }
  }
  for (AttemptArena::Handle other : kill_scratch_) {
    const uint32_t other_slot = AttemptArena::SlotOf(other);
    if (arena_.spare(other_slot)) {
      --job.running_spare;
    } else {
      --job.running_guaranteed;
    }
    job.records[static_cast<size_t>(flat_task)].wasted_seconds +=
        eq_.now() - arena_.attempt_start(other_slot);
    arena_.Release(other, job.active);
  }

  auto& rec = job.records[static_cast<size_t>(flat_task)];
  rec.start_time = exec_start;
  rec.end_time = eq_.now();
  int stage = job.tracker->StageOf(flat_task);
  job.stage_exec_stats[static_cast<size_t>(stage)].Add(eq_.now() - exec_start);
  obs_.Emit(eq_.now(), TaskCompleteEvent{job.id, stage, flat_task, spare, speculative});
  ++tallies_.completions;
  if (speculative) {
    ++tallies_.speculative_wins;
  }
  if (exec_seconds_hist_ != nullptr) {
    exec_seconds_hist_->Observe(eq_.now() - exec_start);
  }

  ++job.completions;
  job.dag->MarkDone(flat_task);
  DrainReady(job);
  if (job.dag->AllDone()) {
    FinishJob(job_id);
  }
  Reschedule();
}

void ClusterSimulator::FinishJob(int job_id) {
  JobState& job = jobs_[static_cast<size_t>(job_id)];
  assert(!job.finished);
  job.finished = true;
  --unfinished_jobs_;
  AccumulateGuaranteedSeconds(job);
  job.result.finished = true;
  job.result.trace.finish_time = eq_.now();
  job.result.trace.tasks = job.records;
  job.result.spare_task_fraction =
      job.completions > 0
          ? static_cast<double>(job.spare_completions) / static_cast<double>(job.completions)
          : 0.0;
  job.result.timeline.push_back(AllocationSample{eq_.now(), job.guaranteed_tokens, 0.0, 0, 0});
  obs_.Emit(eq_.now(), JobFinishEvent{job.id, eq_.now() - job.result.trace.submit_time});
  if (timeseries_ != nullptr) {
    timeseries_->OnJobFinish(job.id, eq_.now(), eq_.now() - job.result.trace.submit_time);
  }
  ++tallies_.jobs_finished;
  if (completion_seconds_hist_ != nullptr) {
    completion_seconds_hist_->Observe(eq_.now() - job.result.trace.submit_time);
  }
  if (job.opts.controller != nullptr) {
    job.opts.controller->OnFinished(eq_.now());
  }
}

void ClusterSimulator::Reschedule() {
  int up = UpSlots();
  // Background demand is sized against nominal capacity (background work does not
  // vanish when machines fail), granted against what is left after guarantees.
  double utilization = background_.UtilizationAt(eq_.now());
  if (fault_injector_ != nullptr) {
    // Adversarial spike: extra demand during the on-phase of each period. Because
    // the period is tuned to the control period, the controller keeps sampling the
    // same phase — it either never sees the spike or never sees the calm.
    const double boost = fault_injector_->SpikeBoost(eq_.now());
    if (boost > 0.0) {
      utilization += boost;
      ++tallies_.fault_adversarial_spikes;
    }
  }
  int demanded = static_cast<int>(std::lround(utilization * config_.TotalSlots()));
  background_demand_ = demanded;

  // Phase 1: guaranteed tokens. Promote already-running spare tasks first (they keep
  // their progress), then start pending tasks.
  int guaranteed_total = 0;
  for (auto& job : jobs_) {
    if (!job.started || job.finished) {
      continue;
    }
    // Demote newest guaranteed tasks to spare if the guarantee shrank below usage.
    while (job.running_guaranteed > job.guaranteed_tokens) {
      uint32_t newest = kNoSlot;
      for (uint32_t slot : job.active) {
        if (!arena_.spare(slot) && (newest == kNoSlot || arena_.StartedAfter(slot, newest))) {
          newest = slot;
        }
      }
      if (newest == kNoSlot) {
        break;
      }
      arena_.set_spare(newest, true);
      --job.running_guaranteed;
      ++job.running_spare;
    }
    // Promote spare tasks up to the guarantee (oldest first: most progress saved).
    while (job.running_guaranteed < job.guaranteed_tokens && job.running_spare > 0) {
      uint32_t oldest = kNoSlot;
      for (uint32_t slot : job.active) {
        if (arena_.spare(slot) && (oldest == kNoSlot || arena_.StartedBefore(slot, oldest))) {
          oldest = slot;
        }
      }
      if (oldest == kNoSlot) {
        break;
      }
      arena_.set_spare(oldest, false);
      ++job.running_guaranteed;
      --job.running_spare;
    }
    guaranteed_total += job.running_guaranteed;
  }
  // Start new guaranteed tasks while physical slots remain; SuperHigh guarantees are
  // served strictly before normal ones (Section 3.1's priority ordering).
  for (PriorityClass pass : {PriorityClass::kSuperHigh, PriorityClass::kNormal}) {
    for (size_t id = 0; id < jobs_.size(); ++id) {
      JobState& job = jobs_[id];
      if (!job.started || job.finished || job.opts.priority != pass) {
        continue;
      }
      while (job.running_guaranteed < job.guaranteed_tokens &&
             job.pending_head < job.pending.size() && guaranteed_total < up) {
        int task = job.pending[job.pending_head++];
        StartTask(job, static_cast<int>(id), task, /*spare=*/false, /*speculative=*/false);
        ++guaranteed_total;
      }
    }
  }

  // Phase 2: background demand squeezes what is left.
  background_slots_ = std::clamp(demanded, 0, std::max(0, up - guaranteed_total));
  int spare_budget = up - guaranteed_total - background_slots_;

  // Phase 3: evict spare tasks (newest first) if the budget no longer covers them.
  int spare_total = 0;
  for (const auto& job : jobs_) {
    spare_total += job.running_spare;
  }
  while (spare_total > std::max(0, spare_budget)) {
    JobState* victim_job = nullptr;
    uint32_t victim_slot = kNoSlot;
    for (auto& job : jobs_) {
      for (uint32_t slot : job.active) {
        if (arena_.spare(slot) &&
            (victim_slot == kNoSlot || arena_.StartedAfter(slot, victim_slot))) {
          victim_slot = slot;
          victim_job = &job;
        }
      }
    }
    if (victim_job == nullptr) {
      break;
    }
    KillAttempt(*victim_job, arena_.handle_of(victim_slot), KillReason::kSpareEviction);
    --spare_total;
  }

  // Phase 4: hand spare tokens to jobs with pending work, round-robin.
  bool assigned = true;
  while (spare_total < spare_budget && assigned) {
    assigned = false;
    for (size_t id = 0; id < jobs_.size() && spare_total < spare_budget; ++id) {
      JobState& job = jobs_[id];
      if (!job.started || job.finished || !job.opts.use_spare_tokens) {
        continue;
      }
      if (job.pending_head < job.pending.size()) {
        int task = job.pending[job.pending_head++];
        StartTask(job, static_cast<int>(id), task, /*spare=*/true, /*speculative=*/false);
        ++spare_total;
        assigned = true;
      }
    }
  }

  if (timeseries_ != nullptr) {
    // spare_budget is the pool handed out at spare priority this round — the
    // "spare tokens" series of the utilization timeline. The recorder throttles to
    // its sampling period, so per-reschedule calls stay cheap.
    timeseries_->OnClusterSample(eq_.now(), CurrentUtilization(), up, background_slots_,
                                 std::max(0, spare_budget));
  }
}

void ClusterSimulator::SpeculationTick() {
  if (unfinished_jobs_ == 0) {
    return;
  }
  int up = UpSlots();
  for (size_t id = 0; id < jobs_.size(); ++id) {
    JobState& job = jobs_[id];
    if (!job.started || job.finished) {
      continue;
    }
    // Duplicates only launch into genuinely free spare headroom; launching into a
    // saturated cluster just gets the copy evicted and churns.
    int running_total = 0;
    int guaranteed_total = 0;
    for (const auto& j : jobs_) {
      running_total += j.running_guaranteed + j.running_spare;
      guaranteed_total += j.running_guaranteed;
    }
    int spare_headroom = up - guaranteed_total - background_slots_ -
                         (running_total - guaranteed_total);
    // Collect straggler candidates first; launching mutates job.active.
    straggler_scratch_.clear();
    for (uint32_t slot : job.active) {
      if (arena_.speculative(slot)) {
        continue;
      }
      const int flat_task = arena_.flat_task(slot);
      const RunningStats& baseline =
          job.stage_exec_stats[static_cast<size_t>(job.tracker->StageOf(flat_task))];
      if (static_cast<int>(baseline.count()) < config_.speculation_min_samples) {
        continue;
      }
      double elapsed = eq_.now() - arena_.exec_start(slot);
      if (elapsed < config_.speculation_slowdown * baseline.mean()) {
        continue;
      }
      if (HasRunningCopy(job, flat_task, slot)) {
        continue;  // already has a duplicate
      }
      if (job.speculation_budget_used[static_cast<size_t>(flat_task)] >=
          config_.speculation_max_per_task) {
        continue;  // duplicate budget exhausted for this task
      }
      straggler_scratch_.push_back(flat_task);
    }
    for (int task : straggler_scratch_) {
      if (running_total >= up || spare_headroom <= 0) {
        break;  // no free headroom; launching would only trigger an eviction
      }
      ++job.speculation_budget_used[static_cast<size_t>(task)];
      obs_.Emit(eq_.now(), SpeculativeLaunchEvent{job.id, job.tracker->StageOf(task), task});
      ++tallies_.speculative_launched;
      StartTask(job, static_cast<int>(id), task, /*spare=*/true, /*speculative=*/true);
      ++job.result.speculative_launched;
      ++running_total;
      --spare_headroom;
    }
  }
  SimEvent next;
  next.kind = SimEvent::Kind::kSpeculationTick;
  eq_.ScheduleAfter(config_.speculation_check_period_seconds, next);
}

bool ClusterSimulator::FailMachine(int machine, int* killed) {
  Machine& m = machines_[static_cast<size_t>(machine)];
  if (!m.up) {
    return false;
  }
  m.up = false;
  int total_killed = 0;
  for (auto& job : jobs_) {
    if (!job.started || job.finished) {
      continue;
    }
    kill_scratch_.clear();
    for (uint32_t slot : job.active) {
      if (arena_.machine(slot) == machine) {
        kill_scratch_.push_back(arena_.handle_of(slot));
      }
    }
    for (AttemptArena::Handle victim : kill_scratch_) {
      ++job.result.machine_failure_kills;
      ++total_killed;
      KillAttempt(job, victim, KillReason::kMachineFailure);
    }
  }
  obs_.Emit(eq_.now(), MachineFailureEvent{machine, total_killed});
  ++tallies_.machine_failures;
  if (killed != nullptr) {
    *killed += total_killed;
  }
  return true;
}

void ClusterSimulator::RecoverMachine(int machine) {
  Machine& m = machines_[static_cast<size_t>(machine)];
  if (m.up) {
    return;
  }
  m.up = true;
  obs_.Emit(eq_.now(), MachineRecoverEvent{machine});
}

void ClusterSimulator::ScheduleMachineFailure() {
  if (config_.machine_failure_rate_per_hour <= 0.0) {
    return;
  }
  double mean_gap = 3600.0 / (config_.machine_failure_rate_per_hour * config_.num_machines);
  SimEvent ev;
  ev.kind = SimEvent::Kind::kMachineFailureTick;
  eq_.ScheduleAfter(rng_.Exponential(mean_gap), ev);
}

void ClusterSimulator::MachineFailureTick() {
  if (unfinished_jobs_ == 0) {
    return;  // no reschedule: the Poisson chain dies with the last job
  }
  int machine = static_cast<int>(rng_.UniformInt(0, config_.num_machines - 1));
  if (FailMachine(machine, nullptr)) {
    SimEvent recover;
    recover.kind = SimEvent::Kind::kMachineRecover;
    recover.a = machine;
    eq_.ScheduleAfter(config_.machine_recovery_seconds, recover);
    Reschedule();
  }
  ScheduleMachineFailure();
}

void ClusterSimulator::ScheduleFaultWindows() {
  for (const FaultWindow* w : fault_injector_->WindowsOfKind(FaultKind::kMachineBurst)) {
    const int first = std::min(w->first_machine, config_.num_machines);
    const int last = std::min(w->first_machine + w->machine_count, config_.num_machines);
    SimEvent start;
    start.kind = SimEvent::Kind::kBurstStart;
    start.a = first;
    start.b = last;
    start.handle = static_cast<uint64_t>(fault_injector_->IndexOf(*w));
    eq_.ScheduleAt(w->start_seconds, start);
    SimEvent end;
    end.kind = SimEvent::Kind::kBurstEnd;
    end.a = first;
    end.b = last;
    eq_.ScheduleAt(w->end_seconds, end);
  }
  for (FaultKind kind : {FaultKind::kMachineSlowdown, FaultKind::kAdversarialSpike}) {
    for (const FaultWindow* w : fault_injector_->WindowsOfKind(kind)) {
      SimEvent mark;
      mark.kind = SimEvent::Kind::kFaultMark;
      mark.handle = static_cast<uint64_t>(fault_injector_->IndexOf(*w));
      eq_.ScheduleAt(w->start_seconds, mark);
    }
  }
}

void ClusterSimulator::ClusterTick() {
  // Periodic cluster tick: refreshes background demand and triggers evictions even
  // when no job event fires.
  if (unfinished_jobs_ == 0) {
    return;
  }
  Reschedule();
  SimEvent next;
  next.kind = SimEvent::Kind::kClusterTick;
  eq_.ScheduleAfter(config_.background.update_period_seconds, next);
}

void ClusterSimulator::Run(double max_seconds) {
  ScheduleMachineFailure();
  if (fault_injector_ != nullptr) {
    ScheduleFaultWindows();
  }
  SimEvent tick;
  tick.kind = SimEvent::Kind::kClusterTick;
  eq_.ScheduleAfter(config_.background.update_period_seconds, tick);
  if (config_.enable_speculation) {
    SimEvent spec;
    spec.kind = SimEvent::Kind::kSpeculationTick;
    eq_.ScheduleAfter(config_.speculation_check_period_seconds, spec);
  }

  SimEvent ev;
  while (unfinished_jobs_ > 0 && !eq_.empty() && eq_.now() < max_seconds) {
    eq_.PopNext(ev);
    Dispatch(ev);
  }
  FlushTallies();
}

void ClusterSimulator::set_observer(Observer observer) {
  obs_ = observer;
  if (obs_.metering()) {
    exec_seconds_hist_ =
        &obs_.metrics()->GetHistogram("cluster.task_exec_seconds", DefaultLatencySecondsEdges());
    completion_seconds_hist_ = &obs_.metrics()->GetHistogram("cluster.job_completion_seconds",
                                                             DefaultLatencySecondsEdges());
  } else {
    exec_seconds_hist_ = nullptr;
    completion_seconds_hist_ = nullptr;
  }
}

void ClusterSimulator::FlushTallies() {
  if (obs_.metering()) {
    obs_.Count("cluster.jobs_submitted", tallies_.jobs_submitted);
    obs_.Count("cluster.jobs_finished", tallies_.jobs_finished);
    obs_.Count("cluster.allocation_changes", tallies_.allocation_changes);
    obs_.Count("cluster.dispatches", tallies_.dispatches);
    obs_.Count("cluster.spare_dispatches", tallies_.spare_dispatches);
    obs_.Count("cluster.completions", tallies_.completions);
    obs_.Count("cluster.evictions", tallies_.evictions);
    obs_.Count("cluster.task_failures", tallies_.task_failures);
    obs_.Count("cluster.machine_failure_kills", tallies_.machine_failure_kills);
    obs_.Count("cluster.reexecutions", tallies_.reexecutions);
    obs_.Count("cluster.speculative_launched", tallies_.speculative_launched);
    obs_.Count("cluster.speculative_wins", tallies_.speculative_wins);
    obs_.Count("cluster.machine_failures", tallies_.machine_failures);
    if (fault_injector_ != nullptr) {
      // Only materialized when an injector is attached: a fault-free run's metrics
      // export stays byte-identical to pre-fault-subsystem builds.
      obs_.Count("fault.report_faults", tallies_.fault_report_faults);
      obs_.Count("fault.blackouts", tallies_.fault_blackouts);
      obs_.Count("fault.grant_shortfalls", tallies_.fault_grant_shortfalls);
      obs_.Count("fault.machine_bursts", tallies_.fault_machine_bursts);
      obs_.Count("fault.machine_slowdowns", tallies_.fault_machine_slowdowns);
      obs_.Count("fault.adversarial_spikes", tallies_.fault_adversarial_spikes);
    }
  }
  tallies_ = ObsTallies{};
}

const ClusterRunResult& ClusterSimulator::result(int job_id) const {
  return jobs_[static_cast<size_t>(job_id)].result;
}

}  // namespace jockey
