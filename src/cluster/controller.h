// The attach point between the cluster and a resource-allocation policy.
//
// Section 4.3: the control loop observes the fraction of completed tasks per stage
// and the time the job has spent running, and outputs a guaranteed-token allocation.
// The cluster simulator invokes the registered JobController once per control period
// with exactly those observables — a policy cannot see ground truth (task runtime
// models, background demand), matching what a real job manager can observe.

#ifndef SRC_CLUSTER_CONTROLLER_H_
#define SRC_CLUSTER_CONTROLLER_H_

#include <vector>

#include "src/util/event_queue.h"

namespace jockey {

// What a policy can observe about its job at a control tick.
struct JobRuntimeStatus {
  SimTime now = 0.0;
  double elapsed_seconds = 0.0;       // time since job submission (t_r in the paper)
  std::vector<double> frac_complete;  // f_s per stage
  int guaranteed_tokens = 0;          // current guarantee
  int running_tasks = 0;
  int pending_tasks = 0;
  int completed_tasks = 0;
  int total_tasks = 0;
  // Progress-report health (fault injection, fault_plan.h). When false, the
  // fractions above are a stale snapshot `report_age_seconds` old — a hardened
  // policy can react (hold, then escalate); a naive one can't tell the difference.
  bool report_fresh = true;
  double report_age_seconds = 0.0;
};

// A policy's output for one control tick.
struct ControlDecision {
  // New guaranteed-token count; the cluster clamps to the job's configured maximum.
  int guaranteed_tokens = 0;
  // The raw (pre-hysteresis, pre-dead-zone) desired allocation, recorded in the
  // allocation timeline; Fig 6 plots it alongside the smoothed allocation.
  double raw_allocation = 0.0;
  // Optional model telemetry for the time-series recorder. Negative means "no
  // prediction": baselines without a completion model leave both defaulted, and
  // the recorder then tracks deadline slack from elapsed time alone.
  double progress = -1.0;
  double predicted_remaining_seconds = -1.0;
};

// Interface implemented by every allocation policy (Jockey and the baselines).
class JobController {
 public:
  virtual ~JobController() = default;
  virtual ControlDecision OnTick(const JobRuntimeStatus& status) = 0;
  // Invoked once when the job completes; multi-job policies use it to release the
  // job's tokens immediately rather than waiting for a tick that never comes.
  virtual void OnFinished(SimTime /*now*/) {}
};

// One point of a job's allocation timeline (the curves of Fig 6).
struct AllocationSample {
  SimTime time = 0.0;
  int guaranteed = 0;
  double raw = 0.0;
  int running = 0;
  int running_spare = 0;
};

}  // namespace jockey

#endif  // SRC_CLUSTER_CONTROLLER_H_
