// The shared-cluster simulator: this reproduction's stand-in for production Cosmos.
//
// Models the environment of Section 2:
//  * token-based scheduling — each job holds guaranteed tokens; one running task
//    consumes one token, released on completion;
//  * spare capacity — slots left over after guaranteed demand and background demand
//    are handed to jobs with pending tasks at *spare* priority;
//  * eviction — when background demand rises, spare-priority tasks are killed (their
//    progress lost) to make room, the paper's main source of latency variance;
//  * contention — tasks started on a busy cluster run slower;
//  * heterogeneity — persistent per-machine speed factors;
//  * failures — per-task failures (from the job's ground-truth model) and machine
//    failures that kill everything running on the machine.
//
// SLO jobs attach a JobController, which the simulator ticks once per control period;
// the controller's only actuator is the job's guaranteed-token count — exactly
// Jockey's mechanism (Section 2.6).
//
// Engine: the event loop runs on a typed SimEventQueue (calendar queue by default,
// selectable via ClusterConfig::event_engine) dispatching small POD event records —
// no per-event allocation, no type-erased calls. Attempt state lives in a
// struct-of-arrays arena (attempt_arena.h) keyed by generation-checked handles;
// stale timer events (the attempt completed or was killed first) fail the
// generation check and drop. Equal-time events fire in insertion order on either
// engine, so a seeded run is bit-identical across engines (verified by the
// engine-differential test).

#ifndef SRC_CLUSTER_CLUSTER_SIMULATOR_H_
#define SRC_CLUSTER_CLUSTER_SIMULATOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/cluster/attempt_arena.h"
#include "src/cluster/cluster_config.h"
#include "src/cluster/controller.h"
#include "src/dag/dependency_tracker.h"
#include "src/obs/observer.h"
#include "src/dag/trace.h"
#include "src/util/calendar_queue.h"
#include "src/util/event_queue.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/workload/background_load.h"
#include "src/workload/job_template.h"

namespace jockey {

class FaultInjector;
class TimeSeriesRecorder;

// Token priority class of a job's guarantee (Section 3.1). Normal guaranteed tokens
// serve after SuperHigh ones; SuperHigh tasks also intensify local contention for
// everyone else — the downside that made the paper reject priority classes.
enum class PriorityClass {
  kNormal,
  kSuperHigh,
};

// Per-job options at submission.
struct JobSubmission {
  SimTime submit_time = 0.0;
  // Initial guaranteed tokens (a controller may change them at every tick).
  int guaranteed_tokens = 10;
  // Hard ceiling on the guarantee (the experiments use a 100-token slice).
  int max_guaranteed_tokens = 100;
  // Scales every task's execution time; models input-size variation across runs of a
  // recurring job (Section 2.3 groups runs by input size).
  double input_scale = 1.0;
  // Whether the job may consume spare-priority tokens beyond its guarantee. The
  // Section 2.4 experiment contrasts normal runs with guaranteed-capacity-only runs.
  bool use_spare_tokens = true;
  // Token priority class (Section 3.1's rejected design, implemented for the
  // bench_ext_superhigh evaluation).
  PriorityClass priority = PriorityClass::kNormal;
  // Optional allocation policy, ticked every control_period_seconds.
  JobController* controller = nullptr;
  double control_period_seconds = 60.0;
  // Per-job randomness; task durations for this job are drawn from a stream forked
  // from this seed, so a job's luck is independent of other cluster activity.
  uint64_t seed = 12345;
};

// Everything recorded about one job's execution on the cluster.
struct ClusterRunResult {
  RunTrace trace;
  std::vector<AllocationSample> timeline;
  // Integral of the guaranteed-token request over the job's lifetime, token-seconds.
  // This is the "allocation requested by the policy" that Fig 4 compares against the
  // oracle allocation.
  double guaranteed_token_seconds = 0.0;
  int evictions = 0;
  int task_failures = 0;          // task-level failures (not evictions)
  int machine_failure_kills = 0;  // tasks killed by machine failures
  int speculative_launched = 0;   // duplicate copies started
  int speculative_wins = 0;       // tasks whose duplicate finished first
  int max_parallelism = 0;        // peak concurrently running tasks
  double spare_task_fraction = 0.0;
  bool finished = false;

  double CompletionSeconds() const { return trace.CompletionSeconds(); }
};

class ClusterSimulator {
 public:
  explicit ClusterSimulator(const ClusterConfig& config);
  ~ClusterSimulator();

  ClusterSimulator(const ClusterSimulator&) = delete;
  ClusterSimulator& operator=(const ClusterSimulator&) = delete;

  // Registers a job. Must be called before Run(). Returns the job id.
  int SubmitJob(const JobTemplate& job, const JobSubmission& opts);

  // Runs until every submitted job finishes or the wall of simulated time is hit.
  void Run(double max_seconds = 48.0 * 3600.0);

  const ClusterRunResult& result(int job_id) const;
  int num_jobs() const { return static_cast<int>(jobs_.size()); }

  // The background-demand process; experiments inject overload episodes through it.
  BackgroundLoad& background() { return background_; }

  // Attaches the observability layer (observer.h): scheduler events — submit,
  // dispatch, completion, kills with reason, speculation, machine failures,
  // allocation changes — flow to the sink as typed trace events, and counters /
  // histograms accumulate in the registry. Call before Run(); default-detached
  // (each emission site then costs a single branch). Counters are tallied as plain
  // ints on the hot path and flushed to the registry when Run() returns — string
  // lookups per scheduler event would blow the <=2% overhead budget.
  void set_observer(Observer observer);

  // Attaches a fault injector (fault_injector.h). Call before Run(); nullptr (the
  // default) detaches, and the detached path is one branch per injection site — a
  // detached injector changes no simulation result bit-for-bit. The injector must
  // outlive the simulator; non-const because report-noise faults advance the
  // injector's seeded noise stream.
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }

  // Attaches a time-series recorder (timeseries.h). Same contract as the fault
  // injector: call before Run(), nullptr (the default) detaches, and the detached
  // path is one branch per sampling site — attaching changes no simulation result.
  // Sampling sites: every control tick (per-job allocation / prediction / slack),
  // every reschedule (cluster utilization and spare pool), and job finish.
  void set_timeseries_recorder(TimeSeriesRecorder* recorder) { timeseries_ = recorder; }

  SimTime now() const { return eq_.now(); }
  int TotalUpSlots() const;

  // Which event engine this run is on, and how many events it has fired — the
  // numerator of BENCH_sim.json's events/s.
  EventEngine event_engine() const { return eq_.engine(); }
  uint64_t events_processed() const { return eq_.popped(); }

 private:
  // One queued occurrence: a 24-byte POD record the event loop switches on.
  // Field use by kind —
  //   kStartJob / kControlTick : a = job id
  //   kTaskEnd                 : a = job id, handle = attempt handle, fails = the
  //                              attempt fails partway instead of completing
  //   kMachineRecover          : a = machine
  //   kBurstStart / kBurstEnd  : a = first machine, b = one past last,
  //                              handle = index into the fault plan's windows()
  //   kFaultMark               : handle = index into the fault plan's windows()
  //                              (gray windows: emits the fault_injected marker)
  //   kMachineFailureTick / kClusterTick / kSpeculationTick : no payload
  struct SimEvent {
    enum class Kind : uint8_t {
      kStartJob,
      kControlTick,
      kTaskEnd,
      kMachineFailureTick,
      kMachineRecover,
      kBurstStart,
      kBurstEnd,
      kClusterTick,
      kSpeculationTick,
      kFaultMark,
    };
    Kind kind = Kind::kClusterTick;
    bool fails = false;
    int32_t a = 0;
    int32_t b = 0;
    uint64_t handle = 0;
  };

  // A truthful progress observation, retained only while report faults are
  // scheduled; dropout/staleness windows serve the controller an old snapshot.
  struct ReportSnapshot {
    SimTime time = 0.0;
    std::vector<double> frac;
    int completed = 0;
  };

  struct JobState {
    int id = 0;  // index in jobs_; labels this job's trace events
    const JobTemplate* tmpl = nullptr;
    JobSubmission opts;
    std::unique_ptr<DependencyTracker> tracker;
    std::unique_ptr<DependencyTracker::State> dag;
    Rng rng{0};
    // Pending = ready but not running. FIFO with head index.
    std::vector<int> pending;
    size_t pending_head = 0;
    // Arena slots of this job's running attempts; a task may have two attempts
    // running at once when speculation launched a duplicate. Unordered — removal
    // is swap-remove; every selection over it uses explicit deterministic keys.
    std::vector<uint32_t> active;
    // Mean observed execution time per stage (speculation baseline).
    std::vector<RunningStats> stage_exec_stats;
    // Speculative launches already spent per task (caps duplicate churn).
    std::vector<uint8_t> speculation_budget_used;
    int running_guaranteed = 0;
    int running_spare = 0;
    int guaranteed_tokens = 0;
    // Per-task records, indexed by flat task id.
    std::vector<TaskRecord> records;
    std::vector<bool> ever_ready;
    int spare_completions = 0;
    int completions = 0;
    SimTime last_alloc_change = 0.0;
    // Truthful per-tick observations (only populated when the attached plan has
    // report faults; see ReportSnapshot).
    std::vector<ReportSnapshot> report_history;
    bool started = false;
    bool finished = false;
    ClusterRunResult result;
  };

  struct Machine {
    double speed = 1.0;
    bool up = true;
  };

  static constexpr uint32_t kNoSlot = 0xffffffffu;

  void Dispatch(const SimEvent& ev);
  void StartJob(int job_id);
  void ControlTick(int job_id);
  void Reschedule();
  void StartTask(JobState& job, int job_id, int flat_task, bool spare, bool speculative);
  void OnTaskComplete(int job_id, AttemptArena::Handle handle);
  // Kills a running attempt (spare eviction, task failure, or machine failure);
  // requeues the task unless another copy of it is still running. Invalidates the
  // handle.
  void KillAttempt(JobState& job, AttemptArena::Handle handle, KillReason reason);
  // True if some running attempt of `job` other than `excluding_slot` executes
  // `flat_task` (pass kNoSlot to consider them all).
  bool HasRunningCopy(const JobState& job, int flat_task, uint32_t excluding_slot) const;
  void SpeculationTick();
  void FinishJob(int job_id);
  void AccumulateGuaranteedSeconds(JobState& job);
  // Replaces the truthful progress fields of `status` per the active report-fault
  // window, recording the truthful snapshot first. Emits fault_injected events.
  void InjectReportFaults(JobState& job, JobRuntimeStatus& status);
  // Takes a machine down, killing every attempt running on it. Returns false when
  // the machine was already down; adds the kill count to *killed when given.
  bool FailMachine(int machine, int* killed);
  void RecoverMachine(int machine);
  // Draws the next Poisson arrival and queues a kMachineFailureTick for it.
  void ScheduleMachineFailure();
  void MachineFailureTick();
  // Registers the plan's machine_burst windows with the event queue (rack-style
  // correlated outages layered on the Poisson model above), plus one kFaultMark
  // per gray window (machine_slowdown / adversarial_spike) at its start so the
  // window's onset is visible in the trace.
  void ScheduleFaultWindows();
  void ClusterTick();
  void DrainReady(JobState& job);
  int UpSlots() const;
  double CurrentUtilization() const;
  // Pushes the accumulated tallies_ into the metrics registry and resets them.
  void FlushTallies();

  // Hot-path counter staging (see set_observer): incremented as plain ints during
  // the event loop, named and flushed once per Run().
  struct ObsTallies {
    int64_t jobs_submitted = 0;
    int64_t jobs_finished = 0;
    int64_t allocation_changes = 0;
    int64_t dispatches = 0;
    int64_t spare_dispatches = 0;
    int64_t completions = 0;
    int64_t evictions = 0;
    int64_t task_failures = 0;
    int64_t machine_failure_kills = 0;
    int64_t reexecutions = 0;
    int64_t speculative_launched = 0;
    int64_t speculative_wins = 0;
    int64_t machine_failures = 0;
    int64_t fault_report_faults = 0;
    int64_t fault_blackouts = 0;
    int64_t fault_grant_shortfalls = 0;
    int64_t fault_machine_bursts = 0;
    int64_t fault_machine_slowdowns = 0;    // task starts whose exec was stretched
    int64_t fault_adversarial_spikes = 0;   // reschedules that saw an on-phase boost
  };

  ClusterConfig config_;
  Observer obs_;
  FaultInjector* fault_injector_ = nullptr;
  TimeSeriesRecorder* timeseries_ = nullptr;
  ObsTallies tallies_;
  // Pre-resolved histogram slots (one name lookup at attach, none per event).
  Histogram* exec_seconds_hist_ = nullptr;
  Histogram* completion_seconds_hist_ = nullptr;
  SimEventQueue<SimEvent> eq_;
  Rng rng_;
  BackgroundLoad background_;
  AttemptArena arena_;
  std::vector<Machine> machines_;
  std::vector<JobState> jobs_;
  // Reused scratch; keeps DrainReady / machine kills / straggler scans off the
  // allocator inside the event loop.
  std::vector<int> ready_scratch_;
  std::vector<AttemptArena::Handle> kill_scratch_;
  std::vector<int> straggler_scratch_;
  int unfinished_jobs_ = 0;
  int background_slots_ = 0;   // background demand currently granted
  int background_demand_ = 0;  // background demand requested (may exceed capacity)
};

}  // namespace jockey

#endif  // SRC_CLUSTER_CLUSTER_SIMULATOR_H_
