// Configuration of the simulated shared cluster.
//
// Defaults approximate the paper's environment scaled down: a token-scheduled cluster
// at ~80% average utilization, commodity multi-core machines, spare capacity
// redistributed to pending work, spare tasks evicted under contention, and occasional
// machine failures. The scale (hundreds of slots rather than tens of thousands) keeps
// per-experiment wall-clock small while leaving the 100-token experiment ceiling well
// inside capacity, as in the paper's "guaranteed cluster slice".

#ifndef SRC_CLUSTER_CLUSTER_CONFIG_H_
#define SRC_CLUSTER_CLUSTER_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/util/calendar_queue.h"
#include "src/workload/background_load.h"

namespace jockey {

struct ClusterConfig {
  int num_machines = 50;
  int slots_per_machine = 4;
  // Persistent per-machine speed factor: log-normal with this sigma around 1.
  double machine_speed_sigma = 0.08;
  // Tasks started while cluster utilization exceeds the threshold run slower:
  // slowdown = 1 + slope * max(0, utilization - threshold).
  double contention_threshold = 0.75;
  double contention_slope = 0.8;
  // Machine-level failures: Poisson per machine; a failed machine kills its running
  // tasks and returns after the recovery time.
  double machine_failure_rate_per_hour = 0.01;
  double machine_recovery_seconds = 900.0;
  // Dispatch latency once a token is granted (process start, binary/data fetch):
  // sampled as scheduling_delay * (0.5 + Exponential(1)).
  double scheduling_delay_seconds = 3.0;
  // Speculative execution of stragglers (Section 4.4 lists the "aggressiveness of
  // mitigating stragglers" as an additional control knob; Mantri-style duplicates).
  // A running task that exceeds speculation_slowdown times its stage's mean observed
  // execution time gets one duplicate at spare priority; the first copy to finish
  // wins and the other is cancelled.
  bool enable_speculation = false;
  double speculation_slowdown = 2.5;
  int speculation_min_samples = 5;  // completed tasks needed before the stage has a baseline
  double speculation_check_period_seconds = 30.0;
  int speculation_max_per_task = 2;  // lifetime duplicate budget per task
  // Extra contention a running SuperHigh task imposes on everyone else (it wins every
  // local resource conflict, degrading co-located tasks): each SuperHigh slot adds
  // this many slot-equivalents of pressure. Section 3.1's "increases contention for
  // local resources ... negative impact on regular jobs".
  double superhigh_pressure_factor = 2.0;
  // Background (rest-of-cluster) demand process.
  BackgroundLoadParams background;
  // Which event-queue engine drives the run. Calendar is the production default;
  // the legacy heap is kept for the engine-differential determinism test and the
  // BENCH_sim.json baseline. A seeded run is bit-identical on either engine.
  EventEngine event_engine = EventEngine::kCalendar;
  uint64_t seed = 1;

  int TotalSlots() const { return num_machines * slots_per_machine; }
};

// Empty string when the config is sane; otherwise the first problem found
// (non-positive machine/slot counts, negative rates or delays, background
// utilization outside [0, 1]). ClusterSimulator's constructor calls this and
// throws std::invalid_argument — a bad config fails fast at construction instead
// of producing a silently nonsensical simulation.
std::string ValidateClusterConfig(const ClusterConfig& config);

}  // namespace jockey

#endif  // SRC_CLUSTER_CLUSTER_CONFIG_H_
