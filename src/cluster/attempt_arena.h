// Struct-of-arrays storage for in-flight task attempts.
//
// The cluster simulator's dispatch→complete/kill path used to key attempts in a
// per-job unordered_map<attempt_id, struct> — a heap allocation per dispatch, a
// hash probe per completion, and pointer-chasing scans for the schedulers that
// repeatedly pick the newest/oldest attempt (demotion, promotion, eviction,
// machine-failure kills, speculation). This arena replaces it:
//
//  * one slot per in-flight attempt, recycled through a free list — after warmup
//    the dispatch path allocates nothing;
//  * fields live in parallel arrays, so the scans that touch only (spare,
//    attempt_start) or only (machine) stream through contiguous memory;
//  * handles are slot index + generation: an event scheduled against an attempt
//    that has since completed or been killed simply fails the generation check,
//    which is how stale timer events are dropped;
//  * a monotonic per-attempt sequence number gives newest/oldest selections a
//    deterministic tie-break at equal start times (the legacy map left ties to
//    hash-iteration order).
//
// The caller owns the per-job list of active slots (JobState::active); the arena
// maintains each slot's position in that list so removal is O(1) swap-remove.

#ifndef SRC_CLUSTER_ATTEMPT_ARENA_H_
#define SRC_CLUSTER_ATTEMPT_ARENA_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/util/event_queue.h"

namespace jockey {

class AttemptArena {
 public:
  // slot in the low 32 bits, generation in the high 32. Generations start at 1,
  // so no live handle is ever 0.
  using Handle = uint64_t;
  static constexpr Handle kNone = 0;

  static uint32_t SlotOf(Handle handle) { return static_cast<uint32_t>(handle); }

  Handle Allocate(std::vector<uint32_t>& active, int flat_task, int machine,
                  SimTime attempt_start, SimTime exec_start, SimTime exec_end, bool spare,
                  bool speculative) {
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<uint32_t>(flat_task_.size());
      flat_task_.push_back(0);
      machine_.push_back(0);
      attempt_start_.push_back(0.0);
      exec_start_.push_back(0.0);
      exec_end_.push_back(0.0);
      flags_.push_back(0);
      order_.push_back(0);
      generation_.push_back(1);
      pos_.push_back(0);
    }
    flat_task_[slot] = flat_task;
    machine_[slot] = machine;
    attempt_start_[slot] = attempt_start;
    exec_start_[slot] = exec_start;
    exec_end_[slot] = exec_end;
    flags_[slot] = static_cast<uint8_t>((spare ? kSpare : 0) | (speculative ? kSpeculative : 0));
    order_[slot] = next_order_++;
    pos_[slot] = static_cast<uint32_t>(active.size());
    active.push_back(slot);
    return MakeHandle(slot);
  }

  // Removes the attempt from its job's active list and recycles the slot. The
  // generation bump invalidates every outstanding handle to it.
  void Release(Handle handle, std::vector<uint32_t>& active) {
    assert(Alive(handle));
    uint32_t slot = SlotOf(handle);
    uint32_t at = pos_[slot];
    assert(at < active.size() && active[at] == slot);
    uint32_t moved = active.back();
    active[at] = moved;
    pos_[moved] = at;
    active.pop_back();
    ++generation_[slot];
    free_.push_back(slot);
  }

  bool Alive(Handle handle) const {
    uint32_t slot = SlotOf(handle);
    return slot < generation_.size() &&
           generation_[slot] == static_cast<uint32_t>(handle >> 32);
  }

  Handle handle_of(uint32_t slot) const { return MakeHandle(slot); }

  int flat_task(uint32_t slot) const { return flat_task_[slot]; }
  int machine(uint32_t slot) const { return machine_[slot]; }
  SimTime attempt_start(uint32_t slot) const { return attempt_start_[slot]; }
  SimTime exec_start(uint32_t slot) const { return exec_start_[slot]; }
  SimTime exec_end(uint32_t slot) const { return exec_end_[slot]; }
  bool spare(uint32_t slot) const { return (flags_[slot] & kSpare) != 0; }
  bool speculative(uint32_t slot) const { return (flags_[slot] & kSpeculative) != 0; }
  // Monotonic across all attempts: the deterministic tie-break for newest/oldest.
  uint64_t order(uint32_t slot) const { return order_[slot]; }

  void set_spare(uint32_t slot, bool spare) {
    flags_[slot] = static_cast<uint8_t>(spare ? (flags_[slot] | kSpare)
                                              : (flags_[slot] & ~kSpare));
  }

  // Strict "started later" / "started earlier" with the sequence tie-break; the
  // demotion, promotion, and eviction scans use these to pick the newest/oldest
  // attempt deterministically.
  bool StartedAfter(uint32_t a, uint32_t b) const {
    if (attempt_start_[a] != attempt_start_[b]) {
      return attempt_start_[a] > attempt_start_[b];
    }
    return order_[a] > order_[b];
  }
  bool StartedBefore(uint32_t a, uint32_t b) const { return StartedAfter(b, a); }

 private:
  static constexpr uint8_t kSpare = 1;
  static constexpr uint8_t kSpeculative = 2;

  Handle MakeHandle(uint32_t slot) const {
    return static_cast<Handle>(slot) | (static_cast<Handle>(generation_[slot]) << 32);
  }

  std::vector<int32_t> flat_task_;
  std::vector<int32_t> machine_;
  std::vector<SimTime> attempt_start_;
  std::vector<SimTime> exec_start_;
  std::vector<SimTime> exec_end_;
  std::vector<uint8_t> flags_;
  std::vector<uint64_t> order_;
  std::vector<uint32_t> generation_;
  std::vector<uint32_t> pos_;  // index in the owning job's active list
  std::vector<uint32_t> free_;
  uint64_t next_order_ = 1;
};

}  // namespace jockey

#endif  // SRC_CLUSTER_ATTEMPT_ARENA_H_
