#include "src/workload/job_template.h"

#include <cmath>

namespace jockey {

double JobTemplate::ExpectedTotalWorkSeconds() const {
  double total = 0.0;
  for (int s = 0; s < graph.num_stages(); ++s) {
    const auto& m = runtime[static_cast<size_t>(s)];
    double body_mean = m.median_seconds * std::exp(m.sigma * m.sigma / 2.0);
    // E[min(Pareto(1, alpha), cap)] for alpha > 1 is alpha/(alpha-1) minus the tail
    // mass beyond the cap; the cap correction is small, so use the uncapped mean.
    double outlier_mean = m.outlier_alpha > 1.0 ? m.outlier_alpha / (m.outlier_alpha - 1.0) : 2.0;
    double mean = body_mean * (1.0 - m.outlier_prob + m.outlier_prob * outlier_mean);
    total += mean * graph.stage(s).num_tasks;
  }
  return total;
}

}  // namespace jockey
