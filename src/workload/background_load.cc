#include "src/workload/background_load.h"

#include <algorithm>

namespace jockey {

BackgroundLoad::BackgroundLoad(const BackgroundLoadParams& params, Rng rng)
    : params_(params), rng_(rng), current_(params.mean_utilization) {
  if (params_.overload_rate_per_hour > 0.0) {
    next_random_overload_ = rng_.Exponential(3600.0 / params_.overload_rate_per_hour);
  } else {
    next_random_overload_ = -1.0;
  }
}

void BackgroundLoad::StepTo(SimTime now) {
  while (stepped_until_ + params_.update_period_seconds <= now) {
    stepped_until_ += params_.update_period_seconds;
    double shock = rng_.Normal(0.0, params_.volatility);
    current_ += params_.reversion * (params_.mean_utilization - current_) + shock;
    current_ = std::clamp(current_, params_.min_utilization, params_.max_utilization);
    if (next_random_overload_ >= 0.0 && stepped_until_ >= next_random_overload_) {
      episodes_.push_back(Episode{next_random_overload_,
                                  next_random_overload_ + params_.overload_duration_seconds,
                                  params_.overload_utilization});
      next_random_overload_ += rng_.Exponential(3600.0 / params_.overload_rate_per_hour) +
                               params_.overload_duration_seconds;
    }
  }
}

double BackgroundLoad::UtilizationAt(SimTime now) {
  StepTo(now);
  double u = current_;
  for (const auto& e : episodes_) {
    if (now >= e.start && now < e.end) {
      u = std::max(u, e.utilization);
    }
  }
  return u;
}

void BackgroundLoad::AddEpisode(SimTime start, double duration, double utilization) {
  episodes_.push_back(Episode{start, start + duration, utilization});
}

}  // namespace jockey
