// Inter-job dependency graph generator (Section 2.5, Fig 1).
//
// The paper examines three days of production jobs and infers a dependence whenever a
// job's input contains blocks written by an earlier job. That trace is proprietary;
// this generator synthesizes a job population whose dependency structure has the same
// qualitative properties: power-law dependent counts (preferential attachment), short
// start gaps after a producer finishes, long chains, and chains spanning business
// groups. bench_fig1_dependencies prints the four CDFs of Fig 1.

#ifndef SRC_WORKLOAD_DEPENDENCY_GRAPH_H_
#define SRC_WORKLOAD_DEPENDENCY_GRAPH_H_

#include <vector>

#include "src/util/event_queue.h"
#include "src/util/rng.h"

namespace jockey {

struct DependencyGraphParams {
  int num_jobs = 20000;
  double window_hours = 72.0;  // the paper's three-day observation window
  int num_groups = 40;         // business groups sharing the cluster
  // Fraction of jobs that consume the output of at least one earlier job (the paper
  // reports 10.2%).
  double frac_with_inputs = 0.102;
  int max_inputs = 3;
  // Probability an input is chosen by preferential attachment (via a random existing
  // edge) rather than uniformly; higher values produce heavier-tailed dependent
  // counts.
  double pref_attach_prob = 0.9;
  // Probability an input extends a pipeline: the producer is drawn from recent jobs
  // that themselves have inputs, creating the long dependent chains of Fig 1.
  double chain_prob = 0.35;
  // Log-normal gap between a producer finishing and a dependent starting; the paper's
  // median gap is ten minutes.
  double median_gap_minutes = 10.0;
  double gap_sigma = 1.6;
};

// One synthesized job in the window.
struct DependencyJobNode {
  SimTime start = 0.0;
  SimTime finish = 0.0;
  int group = 0;
  std::vector<int> inputs;  // indices of producer jobs
};

// The synthesized population plus the Fig 1 measurements.
class DependencyGraph {
 public:
  static DependencyGraph Generate(const DependencyGraphParams& params, Rng& rng);

  const std::vector<DependencyJobNode>& jobs() const { return jobs_; }

  // Gap in minutes between each producer's finish and its direct dependents' starts
  // (one sample per edge). Fig 1, blue curve.
  std::vector<double> DependentGapsMinutes() const;

  // For each job with at least one dependent: length (in jobs) of the longest chain
  // of dependents starting at it. Fig 1, green curve.
  std::vector<double> ChainLengths() const;

  // For each job with at least one dependent: number of jobs transitively using its
  // output. Fig 1, violet curve.
  std::vector<double> TransitiveDependentCounts() const;

  // For each job with at least one dependent: number of distinct business groups
  // among its transitive dependents. Fig 1, red curve.
  std::vector<double> DependentGroupCounts() const;

 private:
  std::vector<std::vector<int>> DependentLists() const;

  std::vector<DependencyJobNode> jobs_;
};

}  // namespace jockey

#endif  // SRC_WORKLOAD_DEPENDENCY_GRAPH_H_
