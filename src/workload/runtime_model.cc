#include "src/workload/runtime_model.h"

#include <algorithm>
#include <cmath>

namespace jockey {
namespace {

// Inverse standard normal CDF (Acklam's rational approximation; relative error < 1e-9
// over (0, 1)). Sufficient for calibrating generator parameters.
double InverseNormalCdf(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  p = std::clamp(p, 1e-12, 1.0 - 1e-12);
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    double q = p - 0.5;
    double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double StageRuntimeModel::SampleSeconds(Rng& rng) const {
  double base = rng.LogNormal(std::log(median_seconds), sigma);
  if (rng.Bernoulli(outlier_prob)) {
    double factor = std::min(rng.Pareto(1.0, outlier_alpha), outlier_cap);
    base *= factor;
  }
  // Floor at a small constant (even trivial tasks pay process start-up) and truncate
  // the tail at the per-stage cap.
  return std::clamp(base, 0.2, task_cap_seconds);
}

double StageRuntimeModel::BodyQuantile(double q) const {
  return median_seconds * std::exp(sigma * InverseNormalCdf(q));
}

}  // namespace jockey
