#include "src/workload/job_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/util/stats.h"

namespace jockey {
namespace {

// z-score of the 90th percentile of a standard normal; p90 = median * exp(kZ90 * sigma)
// for a log-normal.
constexpr double kZ90 = 1.2815515655;

// Builds the DAG topology: a recency-biased chain with occasional joins, several
// source branches, and `num_barriers` full-shuffle (aggregation) stages.
std::vector<StageSpec> BuildTopology(const JobShapeSpec& spec, Rng& rng) {
  int s_count = spec.num_stages;
  std::vector<StageSpec> stages(static_cast<size_t>(s_count));
  int num_sources = std::clamp(spec.num_sources, 1, std::max(1, s_count / 3));

  // Choose source stage ids: stage 0 plus (num_sources - 1) others in the first half,
  // so branches have room to merge back.
  std::vector<bool> is_source(static_cast<size_t>(s_count), false);
  is_source[0] = true;
  int placed = 1;
  while (placed < num_sources) {
    int candidate = static_cast<int>(rng.UniformInt(1, std::max(1, s_count / 2)));
    if (!is_source[static_cast<size_t>(candidate)]) {
      is_source[static_cast<size_t>(candidate)] = true;
      ++placed;
    }
  }

  for (int i = 0; i < s_count; ++i) {
    auto& st = stages[static_cast<size_t>(i)];
    st.name = spec.name + "_s" + std::to_string(i);
    if (is_source[static_cast<size_t>(i)]) {
      continue;
    }
    // Primary input: a recent non-self stage. The window width controls DAG depth
    // (wider window -> more parallel branches -> shorter critical path).
    int lo = std::max(0, i - 7);
    int primary = static_cast<int>(rng.UniformInt(lo, i - 1));
    st.inputs.push_back(StageEdge{primary, CommPattern::kOneToOne});
    // Occasional second input creates joins (Fig 3 shows diamond shapes).
    if (i >= 2 && rng.Bernoulli(0.30)) {
      int secondary = static_cast<int>(rng.UniformInt(0, i - 1));
      if (secondary != primary) {
        st.inputs.push_back(StageEdge{secondary, CommPattern::kOneToOne});
      }
    }
  }

  // Mark barrier stages: turn every input of the chosen stages into a full shuffle.
  std::vector<int> non_source;
  for (int i = 0; i < s_count; ++i) {
    if (!is_source[static_cast<size_t>(i)]) {
      non_source.push_back(i);
    }
  }
  int barriers = std::min<int>(spec.num_barriers, static_cast<int>(non_source.size()));
  for (int b = 0; b < barriers; ++b) {
    // Sample without replacement.
    size_t pick = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(non_source.size()) - 1));
    int stage_id = non_source[pick];
    non_source.erase(non_source.begin() + static_cast<int64_t>(pick));
    for (auto& e : stages[static_cast<size_t>(stage_id)].inputs) {
      e.pattern = CommPattern::kAllToAll;
    }
  }
  return stages;
}

// Distributes `total` tasks over stages: heavy-tailed weights, with aggregation
// (barrier) stages kept small, as in real plans where reducers follow wide maps.
void AssignTaskCounts(std::vector<StageSpec>& stages, int total, Rng& rng) {
  std::vector<double> weights(stages.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    double w = std::exp(rng.Normal(0.0, 1.2));
    if (stages[i].IsBarrier()) {
      w *= 0.08;  // aggregations are narrow
    }
    if (stages[i].inputs.empty()) {
      w *= 2.0;  // extract stages over the input data are wide
    }
    weights[i] = w;
  }
  double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  int assigned = 0;
  size_t largest = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    int n = std::max(1, static_cast<int>(std::floor(weights[i] / sum * total)));
    stages[i].num_tasks = n;
    assigned += n;
    if (stages[i].num_tasks > stages[largest].num_tasks) {
      largest = i;
    }
  }
  // Fix rounding drift on the widest stage, keeping every stage at >= 1 task.
  int drift = total - assigned;
  stages[largest].num_tasks = std::max(1, stages[largest].num_tasks + drift);
}

// Measures the task-runtime median and p90 of the whole job under the given models
// by sampling (the job-level distribution is a task-count-weighted mixture).
std::pair<double, double> SampleJobQuantiles(const std::vector<StageSpec>& stages,
                                             const std::vector<StageRuntimeModel>& models,
                                             Rng& rng) {
  EmpiricalDistribution dist;
  int total = 0;
  for (const auto& s : stages) {
    total += s.num_tasks;
  }
  // Sample proportionally, at least 1 draw per stage, ~4000 draws overall.
  for (size_t i = 0; i < stages.size(); ++i) {
    int draws = std::max(1, stages[i].num_tasks * 4000 / std::max(1, total));
    for (int d = 0; d < draws; ++d) {
      dist.Add(models[i].SampleSeconds(rng));
    }
  }
  return {dist.Quantile(0.5), dist.Quantile(0.9)};
}

}  // namespace

JobTemplate GenerateJob(const JobShapeSpec& spec) {
  assert(spec.num_stages >= 1);
  assert(spec.num_vertices >= spec.num_stages);
  Rng rng(spec.seed);

  std::vector<StageSpec> stages = BuildTopology(spec, rng);
  AssignTaskCounts(stages, spec.num_vertices, rng);

  // Per-stage models: spread stage p90 targets log-uniformly between the fastest and
  // slowest published stage p90s, then derive medians from per-stage sigmas.
  std::vector<StageRuntimeModel> models(stages.size());
  double ln_fast = std::log(spec.fastest_stage_p90);
  double ln_slow = std::log(spec.slowest_stage_p90);
  // Wide stages are fast, narrow stages slow — as in real plans, where wide extract /
  // map stages stream cheap records while narrow aggregations grind. This correlation
  // is what lets a job have a slowest-stage p90 far above its overall p90 (Table 2):
  // the slow stages hold few of the vertices.
  std::vector<size_t> by_width(stages.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    by_width[i] = i;
  }
  std::sort(by_width.begin(), by_width.end(), [&](size_t a, size_t b) {
    return stages[a].num_tasks > stages[b].num_tasks;
  });
  std::vector<double> speed_rank(stages.size());
  for (size_t rank = 0; rank < by_width.size(); ++rank) {
    speed_rank[by_width[rank]] =
        static_cast<double>(rank) / std::max<size_t>(1, stages.size() - 1);
  }
  for (size_t i = 0; i < stages.size(); ++i) {
    double u = std::clamp(speed_rank[i] + rng.Uniform(-0.15, 0.15), 0.0, 1.0);
    if (i == by_width.front()) {
      u = 0.0;  // the widest stage anchors the fastest-stage p90
    }
    if (i == by_width.back()) {
      u = 1.0;  // the narrowest anchors the slowest-stage p90
    }
    // Convex mapping: only the very narrowest stages approach the slowest-stage p90;
    // a chain of uniformly slow stages would otherwise blow up the critical path far
    // beyond anything in the paper's jobs.
    u = std::pow(u, 4.0);
    double stage_p90 = std::exp(ln_fast + u * (ln_slow - ln_fast));
    auto& m = models[i];
    m.sigma = rng.Uniform(0.45, 0.85);
    m.median_seconds = stage_p90 / std::exp(kZ90 * m.sigma);
    m.outlier_prob = rng.Uniform(0.01, 0.05);
    m.outlier_alpha = rng.Uniform(1.6, 2.4);
    // Keep any single straggler under ~10 simulated minutes: stages whose p90 is
    // already large get a tighter multiplier cap, otherwise one outlier in a slow
    // stage would dominate the whole job's critical path.
    m.outlier_cap = std::clamp(450.0 / stage_p90, 1.5, 6.0);
    m.failure_prob = rng.Uniform(0.002, 0.01);
  }

  // Calibrate against the job-level median and p90 (two fixed-point passes).
  for (int pass = 0; pass < 2; ++pass) {
    Rng probe = rng.Fork();
    auto [median, p90] = SampleJobQuantiles(stages, models, probe);
    double median_scale = spec.job_median_seconds / std::max(1e-9, median);
    double tail_target = std::log(spec.job_p90_seconds / spec.job_median_seconds);
    double tail_actual = std::log(std::max(1.001, p90 / median));
    double sigma_scale = std::clamp(tail_target / tail_actual, 0.5, 2.0);
    for (auto& m : models) {
      m.median_seconds *= median_scale;
      m.sigma = std::clamp(m.sigma * sigma_scale, 0.15, 1.3);
    }
  }

  // Re-anchor after calibration: no stage may be slower than the published
  // slowest-stage p90 (the global median rescale can push narrow stages past it; the
  // 1.15 discount offsets outlier inflation of the sampled p90), and single tasks are
  // truncated a little above their stage's p90.
  for (auto& m : models) {
    double p90 = m.BodyQuantile(0.9);
    double ceiling = spec.slowest_stage_p90 / 1.15;
    if (p90 > ceiling) {
      m.median_seconds *= ceiling / p90;
      p90 = ceiling;
    }
    m.task_cap_seconds = std::max(60.0, 3.0 * p90);
  }
  // Anchor the fastest-stage p90 on a narrow stage: wide stages carry the job's
  // overall quantiles (which the calibration owns), while in the published jobs the
  // fastest stage is typically a tiny auxiliary stage.
  if (stages.size() >= 3) {
    auto& fast = models[by_width[by_width.size() - 2]];
    fast.median_seconds = spec.fastest_stage_p90 / std::exp(kZ90 * fast.sigma);
    fast.outlier_prob = 0.005;
    fast.task_cap_seconds = std::max(60.0, 3.0 * spec.fastest_stage_p90);
  }

  JobTemplate tmpl;
  tmpl.graph = JobGraph(spec.name, std::move(stages));
  tmpl.runtime = std::move(models);
  tmpl.data_read_gb = spec.data_read_gb;
  std::string error;
  bool ok = tmpl.graph.Validate(&error);
  assert(ok && "generated graph must validate");
  (void)ok;
  return tmpl;
}

// Table 2 of the paper, one spec per column.
JobShapeSpec JobSpecA() {
  return JobShapeSpec{"jobA", 23, 6, 681, 16.3, 61.5, 4.0, 126.3, 222.5, /*seed=*/101, 2};
}
JobShapeSpec JobSpecB() {
  return JobShapeSpec{"jobB", 14, 0, 1605, 4.0, 54.1, 3.3, 116.7, 114.3, /*seed=*/102, 2};
}
JobShapeSpec JobSpecC() {
  return JobShapeSpec{"jobC", 16, 3, 5751, 2.6, 5.7, 1.7, 21.9, 151.1, /*seed=*/103, 3};
}
JobShapeSpec JobSpecD() {
  return JobShapeSpec{"jobD", 24, 3, 3897, 6.1, 25.1, 1.4, 72.6, 268.7, /*seed=*/104, 2};
}
JobShapeSpec JobSpecE() {
  return JobShapeSpec{"jobE", 11, 1, 2033, 8.0, 130.0, 3.9, 320.6, 195.7, /*seed=*/105, 2};
}
JobShapeSpec JobSpecF() {
  return JobShapeSpec{"jobF", 26, 1, 6139, 3.6, 17.4, 3.3, 110.4, 285.6, /*seed=*/106, 3};
}
JobShapeSpec JobSpecG() {
  return JobShapeSpec{"jobG", 110, 15, 8496, 3.0, 7.7, 1.6, 68.3, 155.3, /*seed=*/107, 4};
}

std::vector<JobShapeSpec> EvaluationJobSpecs() {
  return {JobSpecA(), JobSpecB(), JobSpecC(), JobSpecD(), JobSpecE(), JobSpecF(), JobSpecG()};
}

std::vector<JobTemplate> MakeEvaluationJobs() {
  std::vector<JobTemplate> jobs;
  for (const auto& spec : EvaluationJobSpecs()) {
    jobs.push_back(GenerateJob(spec));
  }
  return jobs;
}

JobTemplate MakeRandomJob(const std::string& name, Rng& rng, const RandomJobParams& params) {
  JobShapeSpec spec;
  spec.name = name;
  spec.seed = rng.engine()();
  spec.num_stages = static_cast<int>(rng.UniformInt(params.min_stages, params.max_stages));
  spec.num_barriers = static_cast<int>(rng.UniformInt(0, std::max(1, spec.num_stages / 6)));
  spec.num_vertices = static_cast<int>(rng.UniformInt(
      std::max(params.min_vertices, spec.num_stages), params.max_vertices));
  spec.job_median_seconds = rng.Uniform(params.min_median_seconds, params.max_median_seconds);
  spec.job_p90_seconds = spec.job_median_seconds * rng.Uniform(2.0, 12.0);
  spec.fastest_stage_p90 = spec.job_median_seconds * rng.Uniform(0.3, 0.9);
  spec.slowest_stage_p90 = spec.job_p90_seconds * rng.Uniform(2.0, 5.0);
  spec.data_read_gb = rng.Uniform(20.0, 400.0);
  spec.num_sources = static_cast<int>(rng.UniformInt(1, 3));
  return GenerateJob(spec);
}

}  // namespace jockey
