// Ground-truth task runtime models.
//
// The cluster simulator plays the role of the production Cosmos cluster, so each
// generated job carries a *ground-truth* stochastic model of its task behaviour:
// log-normal execution times with a heavy-tailed outlier mixture (stragglers, the
// paper's "tasks with unusually high latency") and a per-attempt failure probability.
// Jockey never sees this model — it only sees traces of prior runs, exactly as the
// real system only sees prior executions.

#ifndef SRC_WORKLOAD_RUNTIME_MODEL_H_
#define SRC_WORKLOAD_RUNTIME_MODEL_H_

#include "src/util/rng.h"

namespace jockey {

// Stochastic runtime behaviour of one stage's tasks.
struct StageRuntimeModel {
  // Median of the log-normal body, seconds. The log-normal's mu = ln(median).
  double median_seconds = 5.0;
  // Shape of the log-normal body; p90/median = exp(1.2816 * sigma).
  double sigma = 0.6;
  // Probability a task is an outlier (straggler).
  double outlier_prob = 0.03;
  // Outlier multiplier: Pareto(1, outlier_alpha), clamped to outlier_cap.
  double outlier_alpha = 1.8;
  double outlier_cap = 12.0;
  // Probability that one execution attempt fails and the task must re-run.
  double failure_prob = 0.01;
  // Hard truncation of a single task's execution time. Data-parallel tasks are
  // seconds-to-minutes scale; an unbounded log-normal tail would otherwise
  // manufacture hour-long stragglers that dominate the critical path.
  double task_cap_seconds = 1e9;

  // Draws one task execution time, seconds.
  double SampleSeconds(Rng& rng) const;

  // Closed-form quantile of the body (ignores the outlier mixture); used by the
  // generator to calibrate stage parameters against the paper's Table 2 targets.
  double BodyQuantile(double q) const;
};

}  // namespace jockey

#endif  // SRC_WORKLOAD_RUNTIME_MODEL_H_
