// Background cluster demand process.
//
// Section 2 attributes job-latency variance to statistical multiplexing: the
// availability of spare tokens fluctuates with what the rest of the cluster is doing,
// and spare-priority tasks are evicted during contention. Rather than simulating
// thousands of background jobs task-by-task, the cluster simulator drives background
// demand with this mean-reverting stochastic process (average utilization defaults to
// the paper's 80%), plus optional overload episodes — random (Poisson) or injected
// deterministically for experiments like Fig 6(a)'s overloaded-cluster run.

#ifndef SRC_WORKLOAD_BACKGROUND_LOAD_H_
#define SRC_WORKLOAD_BACKGROUND_LOAD_H_

#include <vector>

#include "src/util/event_queue.h"
#include "src/util/rng.h"

namespace jockey {

struct BackgroundLoadParams {
  double mean_utilization = 0.8;
  double volatility = 0.05;    // per-step random shock (fraction of capacity)
  double reversion = 0.12;     // per-step pull toward the mean
  double update_period_seconds = 30.0;
  double min_utilization = 0.25;
  double max_utilization = 1.2;  // >1 means background demand alone can fill the cluster
  // Poisson-arriving overload episodes (0 disables them).
  double overload_rate_per_hour = 0.0;
  double overload_utilization = 1.15;
  double overload_duration_seconds = 600.0;
};

// A piecewise-constant utilization process sampled on a fixed grid.
//
// UtilizationAt(t) advances the internal walk up to t and returns the background
// demand as a fraction of total cluster capacity. Calls must use non-decreasing t.
class BackgroundLoad {
 public:
  BackgroundLoad(const BackgroundLoadParams& params, Rng rng);

  // Background demand at time `now` as a fraction of cluster capacity; can exceed 1.
  double UtilizationAt(SimTime now);

  // Forces utilization to `utilization` during [start, start + duration), overriding
  // the random walk. Used to inject deterministic cluster events.
  void AddEpisode(SimTime start, double duration, double utilization);

 private:
  struct Episode {
    SimTime start;
    SimTime end;
    double utilization;
  };

  void StepTo(SimTime now);

  BackgroundLoadParams params_;
  Rng rng_;
  SimTime stepped_until_ = 0.0;
  double current_;
  SimTime next_random_overload_;
  std::vector<Episode> episodes_;
};

}  // namespace jockey

#endif  // SRC_WORKLOAD_BACKGROUND_LOAD_H_
