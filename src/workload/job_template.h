// JobTemplate: a job's structure plus its ground-truth runtime behaviour.
//
// Templates are what the workload generator produces and what the cluster simulator
// executes. Jockey itself never reads the ground truth — it trains on traces.

#ifndef SRC_WORKLOAD_JOB_TEMPLATE_H_
#define SRC_WORKLOAD_JOB_TEMPLATE_H_

#include <string>
#include <vector>

#include "src/dag/job_graph.h"
#include "src/workload/runtime_model.h"

namespace jockey {

// One generated job: execution-plan graph plus per-stage ground-truth models.
struct JobTemplate {
  JobGraph graph;
  std::vector<StageRuntimeModel> runtime;  // one per stage
  double data_read_gb = 0.0;               // reported in Table 2; not simulated

  const std::string& name() const { return graph.name(); }

  // Expected aggregate CPU seconds: sum over stages of num_tasks * E[task seconds].
  // E[lognormal] = median * exp(sigma^2 / 2); the outlier mixture adds its expected
  // multiplier mass.
  double ExpectedTotalWorkSeconds() const;
};

}  // namespace jockey

#endif  // SRC_WORKLOAD_JOB_TEMPLATE_H_
