// Generator for evaluation jobs.
//
// The paper's evaluation uses 21 recurring production jobs, of which seven (A-G) are
// characterized in detail in Table 2 and Fig 3. Those jobs are proprietary, so we
// synthesize structurally equivalent jobs: GenerateJob() builds a DAG with the target
// stage / barrier / vertex counts and calibrates per-stage log-normal runtime models
// against the target vertex-runtime median, 90th percentile, and fastest/slowest-stage
// 90th percentiles. JobSpecA()..JobSpecG() carry Table 2's published numbers.

#ifndef SRC_WORKLOAD_JOB_GENERATOR_H_
#define SRC_WORKLOAD_JOB_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/workload/job_template.h"

namespace jockey {

// Target shape of a generated job (Table 2 row).
struct JobShapeSpec {
  std::string name;
  int num_stages = 10;
  int num_barriers = 2;
  int num_vertices = 1000;
  double job_median_seconds = 5.0;   // median task runtime across the whole job
  double job_p90_seconds = 25.0;     // p90 task runtime across the whole job
  double fastest_stage_p90 = 2.0;    // p90 of the fastest stage
  double slowest_stage_p90 = 100.0;  // p90 of the slowest stage
  double data_read_gb = 100.0;
  uint64_t seed = 1;
  int num_sources = 2;  // number of input branches (stages with no inputs)
};

// Builds a job matching `spec`. Deterministic for a fixed spec (including seed).
JobTemplate GenerateJob(const JobShapeSpec& spec);

// Table 2 rows for the seven detailed evaluation jobs.
JobShapeSpec JobSpecA();
JobShapeSpec JobSpecB();
JobShapeSpec JobSpecC();
JobShapeSpec JobSpecD();
JobShapeSpec JobSpecE();
JobShapeSpec JobSpecF();
JobShapeSpec JobSpecG();

// All seven detailed jobs, in order A..G.
std::vector<JobShapeSpec> EvaluationJobSpecs();
std::vector<JobTemplate> MakeEvaluationJobs();

// Parameters for randomized recurring jobs (Table 1 fleet and the additional 14 of
// the 21 evaluation jobs).
struct RandomJobParams {
  int min_stages = 6;
  int max_stages = 30;
  int min_vertices = 150;
  int max_vertices = 2500;
  double min_median_seconds = 2.0;
  double max_median_seconds = 15.0;
};

// Builds a random job whose shape is drawn from `params` using `rng`.
JobTemplate MakeRandomJob(const std::string& name, Rng& rng,
                          const RandomJobParams& params = RandomJobParams());

}  // namespace jockey

#endif  // SRC_WORKLOAD_JOB_GENERATOR_H_
