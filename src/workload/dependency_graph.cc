#include "src/workload/dependency_graph.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace jockey {

DependencyGraph DependencyGraph::Generate(const DependencyGraphParams& params, Rng& rng) {
  DependencyGraph g;
  g.jobs_.reserve(static_cast<size_t>(params.num_jobs));
  double window_seconds = params.window_hours * 3600.0;
  // Flat list of (producer) endpoints of existing edges; picking a uniform element is
  // the O(1) preferential-attachment trick (probability proportional to out-degree).
  std::vector<int> edge_producers;
  // Jobs that themselves consume inputs; chain edges extend these into pipelines.
  std::vector<int> consumers;

  for (int j = 0; j < params.num_jobs; ++j) {
    DependencyJobNode node;
    // Zipf-ish group popularity: a few groups own most jobs.
    double z = rng.Uniform();
    node.group = static_cast<int>(std::pow(z, 2.0) * params.num_groups);
    node.group = std::min(node.group, params.num_groups - 1);
    node.start = rng.Uniform(0.0, window_seconds);
    double duration = rng.LogNormal(std::log(20.0 * 60.0), 1.0);  // median 20 min
    bool has_inputs = j > 0 && rng.Bernoulli(params.frac_with_inputs);
    if (has_inputs) {
      int n_inputs = static_cast<int>(rng.UniformInt(1, params.max_inputs));
      std::set<int> chosen;
      for (int k = 0; k < n_inputs; ++k) {
        int producer;
        if (!consumers.empty() && rng.Bernoulli(params.chain_prob)) {
          // Extend a pipeline: depend on a recent job that itself has inputs.
          size_t lo = consumers.size() > 50 ? consumers.size() - 50 : 0;
          producer = consumers[static_cast<size_t>(
              rng.UniformInt(static_cast<int64_t>(lo),
                             static_cast<int64_t>(consumers.size()) - 1))];
        } else if (!edge_producers.empty() && rng.Bernoulli(params.pref_attach_prob)) {
          producer = edge_producers[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(edge_producers.size()) - 1))];
        } else {
          producer = static_cast<int>(rng.UniformInt(0, j - 1));
        }
        chosen.insert(producer);
      }
      consumers.push_back(j);
      double latest_finish = 0.0;
      for (int producer : chosen) {
        node.inputs.push_back(producer);
        edge_producers.push_back(producer);
        latest_finish = std::max(latest_finish, g.jobs_[static_cast<size_t>(producer)].finish);
      }
      // Dependents start shortly after their inputs are ready (Fig 1: median 10 min).
      double gap = rng.LogNormal(std::log(params.median_gap_minutes * 60.0), params.gap_sigma);
      node.start = latest_finish + gap;
    }
    node.finish = node.start + duration;
    g.jobs_.push_back(std::move(node));
  }
  return g;
}

std::vector<std::vector<int>> DependencyGraph::DependentLists() const {
  std::vector<std::vector<int>> dependents(jobs_.size());
  for (size_t j = 0; j < jobs_.size(); ++j) {
    for (int producer : jobs_[j].inputs) {
      dependents[static_cast<size_t>(producer)].push_back(static_cast<int>(j));
    }
  }
  return dependents;
}

std::vector<double> DependencyGraph::DependentGapsMinutes() const {
  // Gap between a dependent's start and the moment its inputs were complete, i.e.
  // against the latest-finishing (binding) producer. Non-binding producers finished
  // earlier by construction and would only measure the consumer's input skew.
  std::vector<double> gaps;
  for (const auto& job : jobs_) {
    if (job.inputs.empty()) {
      continue;
    }
    double latest = 0.0;
    for (int producer : job.inputs) {
      latest = std::max(latest, jobs_[static_cast<size_t>(producer)].finish);
    }
    double gap = job.start - latest;
    if (gap >= 0.0) {
      gaps.push_back(gap / 60.0);
    }
  }
  return gaps;
}

std::vector<double> DependencyGraph::ChainLengths() const {
  auto dependents = DependentLists();
  // Jobs are created in index order and edges always point backwards, so ascending
  // index is a reverse-topological order for the dependents relation.
  std::vector<int> longest(jobs_.size(), 0);
  for (size_t j = jobs_.size(); j-- > 0;) {
    for (int d : dependents[j]) {
      longest[j] = std::max(longest[j], 1 + longest[static_cast<size_t>(d)]);
    }
  }
  std::vector<double> out;
  for (size_t j = 0; j < jobs_.size(); ++j) {
    if (!dependents[j].empty()) {
      out.push_back(static_cast<double>(1 + longest[j]));
    }
  }
  return out;
}

std::vector<double> DependencyGraph::TransitiveDependentCounts() const {
  auto dependents = DependentLists();
  std::vector<double> out;
  for (size_t j = 0; j < jobs_.size(); ++j) {
    if (dependents[j].empty()) {
      continue;
    }
    // BFS over dependents; graphs here are sparse so this is fast enough.
    std::set<int> seen;
    std::vector<int> frontier = dependents[j];
    while (!frontier.empty()) {
      int cur = frontier.back();
      frontier.pop_back();
      if (!seen.insert(cur).second) {
        continue;
      }
      for (int d : dependents[static_cast<size_t>(cur)]) {
        frontier.push_back(d);
      }
    }
    out.push_back(static_cast<double>(seen.size()));
  }
  return out;
}

std::vector<double> DependencyGraph::DependentGroupCounts() const {
  auto dependents = DependentLists();
  std::vector<double> out;
  for (size_t j = 0; j < jobs_.size(); ++j) {
    if (dependents[j].empty()) {
      continue;
    }
    std::set<int> seen;
    std::set<int> groups;
    std::vector<int> frontier = dependents[j];
    while (!frontier.empty()) {
      int cur = frontier.back();
      frontier.pop_back();
      if (!seen.insert(cur).second) {
        continue;
      }
      groups.insert(jobs_[static_cast<size_t>(cur)].group);
      for (int d : dependents[static_cast<size_t>(cur)]) {
        frontier.push_back(d);
      }
    }
    out.push_back(static_cast<double>(groups.size()));
  }
  return out;
}

}  // namespace jockey
