// SCOPE quickstart: from a job script to a met SLO, end to end.
//
// The paper's jobs are written in SCOPE and compiled to execution-plan graphs
// (Section 2.1). This example embeds a small script in the paper's spirit — extract,
// filter, join, aggregate — compiles it with the bundled frontend, trains Jockey from
// one run, and executes the job under its control loop.

#include <cstdio>

#include "src/core/experiment.h"
#include "src/scope/planner.h"

int main() {
  using namespace jockey;

  constexpr char kScript[] = R"(
    -- clickstream freshness pipeline
    clicks   = EXTRACT FROM "store://logs/clicks"      PARTITIONS 300 COST 4 SKEW 0.7;
    sessions = SELECT clicks COST 2;
    users    = EXTRACT FROM "store://dims/users"       PARTITIONS 40 COST 3;
    joined   = JOIN sessions, users ON user_id PARTITIONS 120 COST 5 SKEW 0.8;
    daily    = REDUCE joined ON user_id PARTITIONS 24 COST 9;
    rollup   = AGGREGATE daily COST 35;
    OUTPUT rollup TO "store://out/daily_rollup";
  )";

  PlanResult plan = CompileScopeScript(kScript);
  if (!plan.ok) {
    std::fprintf(stderr, "compile error: %s\n", plan.error.c_str());
    return 1;
  }
  std::printf("compiled plan: %d stages, %d tasks, %d barriers\n",
              plan.job.graph.num_stages(), plan.job.graph.num_tasks(),
              plan.job.graph.num_barrier_stages());
  for (const auto& note : plan.notes) {
    std::printf("  optimizer: %s\n", note.c_str());
  }

  TrainedJob trained = TrainJob(plan.job);
  double deadline = SuggestDeadlineSeconds(trained, /*tight=*/true);
  std::printf("trained from one run (%.1f min); SLO deadline %.0f min\n",
              trained.training_trace.CompletionSeconds() / 60.0, deadline / 60.0);

  ExperimentOptions options;
  options.deadline_seconds = deadline;
  options.policy = PolicyKind::kJockey;
  options.seed = 7;
  ExperimentResult result = RunExperiment(trained, options);
  std::printf("run finished in %.1f min: SLO %s (oracle %d tokens, %.0f%% above oracle)\n",
              result.completion_seconds / 60.0, result.met_deadline ? "MET" : "MISSED",
              result.oracle_tokens, 100.0 * result.frac_above_oracle);
  return result.met_deadline ? 0 : 1;
}
