// Quickstart: run one recurring job under a latency SLO with Jockey.
//
// The workflow mirrors the paper's Fig 2:
//   1. obtain (or here: simulate) one prior execution of the recurring job;
//   2. offline, build the Jockey model from its trace — per-stage statistics plus the
//      precomputed completion-time distributions C(p, a);
//   3. at runtime, attach a JockeyController to the job; every control period it
//      observes progress and re-sizes the job's guaranteed-token allocation so the
//      deadline is met with minimal cluster impact.

#include <cstdio>

#include "src/core/experiment.h"
#include "src/workload/job_generator.h"

int main() {
  using namespace jockey;

  // A recurring job: 12 stages, a couple of aggregation barriers, ~800 tasks.
  JobShapeSpec spec;
  spec.name = "nightly-report";
  spec.num_stages = 12;
  spec.num_barriers = 2;
  spec.num_vertices = 800;
  spec.job_median_seconds = 5.0;
  spec.job_p90_seconds = 18.0;
  spec.fastest_stage_p90 = 2.0;
  spec.slowest_stage_p90 = 45.0;
  spec.seed = 2718;
  JobTemplate job = GenerateJob(spec);
  std::printf("job %s: %d stages, %d tasks, %d barriers\n", job.name().c_str(),
              job.graph.num_stages(), job.graph.num_tasks(), job.graph.num_barrier_stages());

  // --- Offline phase: one training run on the shared cluster, then build the model.
  TrainedJob trained = TrainJob(job);
  std::printf("training run: %.1f min, %.1f token-hours of work\n",
              trained.training_trace.CompletionSeconds() / 60.0,
              trained.training_trace.TotalWorkSeconds() / 3600.0);

  const Jockey& model = *trained.jockey;
  std::printf("feasibility: critical path = %.1f min (no deadline below this)\n",
              model.FeasibleDeadlineSeconds() / 60.0);
  for (int tokens : {10, 20, 40, 80}) {
    std::printf("  predicted worst-case completion at %3d tokens: %.1f min\n", tokens,
                model.PredictCompletionSeconds(tokens) / 60.0);
  }

  // --- Pick an SLO and check admission.
  double deadline = SuggestDeadlineSeconds(trained, /*tight=*/true);
  std::printf("\nSLO deadline: %.0f min; fits within 100 guaranteed tokens: %s\n",
              deadline / 60.0, model.WouldFit(deadline, 100) ? "yes" : "no");
  std::printf("a-priori allocation for this deadline: %d tokens\n",
              model.InitialAllocation(deadline));

  // --- Runtime phase: execute on the shared cluster under Jockey's control loop.
  ExperimentOptions options;
  options.deadline_seconds = deadline;
  options.policy = PolicyKind::kJockey;
  options.seed = 42;
  ExperimentResult result = RunExperiment(trained, options);

  std::printf("\nrun finished in %.1f min (deadline %.0f min): SLO %s\n",
              result.completion_seconds / 60.0, deadline / 60.0,
              result.met_deadline ? "MET" : "MISSED");
  std::printf("oracle allocation O(T,d) = %d tokens; requested %.1f token-hours "
              "(%.0f%% above oracle)\n",
              result.oracle_tokens, result.requested_token_seconds / 3600.0,
              100.0 * result.frac_above_oracle);
  std::printf("allocation trajectory (every ~5 min):\n");
  size_t step = std::max<size_t>(1, result.run.timeline.size() / 10);
  for (size_t i = 0; i < result.run.timeline.size(); i += step) {
    const AllocationSample& s = result.run.timeline[i];
    std::printf("  t=%5.1f min  guaranteed=%3d  running=%3d\n", s.time / 60.0, s.guaranteed,
                s.running);
  }
  return result.met_deadline ? 0 : 1;
}
