// Multi-job arbitration: three SLO jobs of different importance share one token
// budget under the global arbiter (the inter-job arbiter of Section 4.4).
//
// The scenario: a revenue-critical advertising job (importance 10), a standard
// index-refresh job (importance 1), and a best-effort analytics job (importance 0.2)
// all want tokens at once. The arbiter grants tokens where the expected weighted
// utility gain is largest, so under pressure the advertising job is protected first.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/cluster/cluster_simulator.h"
#include "src/core/arbiter.h"
#include "src/core/experiment.h"
#include "src/workload/job_generator.h"

namespace {

jockey::JobShapeSpec Spec(const std::string& name, int vertices, uint64_t seed) {
  jockey::JobShapeSpec spec;
  spec.name = name;
  spec.num_stages = 10;
  spec.num_barriers = 2;
  spec.num_vertices = vertices;
  spec.job_median_seconds = 4.0;
  spec.job_p90_seconds = 15.0;
  spec.fastest_stage_p90 = 2.0;
  spec.slowest_stage_p90 = 35.0;
  spec.seed = seed;
  return spec;
}

}  // namespace

int main() {
  using namespace jockey;

  struct SloJob {
    TrainedJob trained;
    double importance;
    double deadline;
  };
  std::vector<SloJob> slo_jobs;
  slo_jobs.push_back({TrainJob(GenerateJob(Spec("ads", 900, 41))), 10.0, 0.0});
  slo_jobs.push_back({TrainJob(GenerateJob(Spec("index", 1400, 42))), 1.0, 0.0});
  slo_jobs.push_back({TrainJob(GenerateJob(Spec("analytics", 700, 43))), 0.2, 0.0});
  for (auto& job : slo_jobs) {
    job.deadline = SuggestDeadlineSeconds(job.trained, /*tight=*/true);
  }

  ArbiterConfig arbiter_config;
  arbiter_config.total_tokens = 80;  // deliberately scarce
  MultiJobArbiter arbiter(arbiter_config);
  std::printf("shared budget: %d guaranteed tokens across %zu jobs\n\n",
              arbiter_config.total_tokens, slo_jobs.size());

  ClusterSimulator cluster(DefaultExperimentCluster(55));
  std::vector<int> ids;
  for (size_t j = 0; j < slo_jobs.size(); ++j) {
    int idx = arbiter.AddJob(slo_jobs[j].trained.jockey,
                             DeadlineUtility(slo_jobs[j].deadline), slo_jobs[j].importance);
    JobSubmission submission;
    submission.controller = arbiter.ControllerFor(idx);
    submission.use_spare_tokens = false;
    submission.seed = 700 + j;
    ids.push_back(cluster.SubmitJob(*slo_jobs[j].trained.tmpl, submission));
  }
  cluster.Run();

  bool all_met = true;
  for (size_t j = 0; j < slo_jobs.size(); ++j) {
    const ClusterRunResult& r = cluster.result(ids[j]);
    double mean_tokens = 0.0;
    for (const auto& sample : r.timeline) {
      mean_tokens += sample.guaranteed;
    }
    mean_tokens /= std::max<size_t>(1, r.timeline.size());
    bool met = r.finished && r.CompletionSeconds() <= slo_jobs[j].deadline;
    all_met = all_met && met;
    std::printf("%-10s importance %4.1f  deadline %3.0f min  finished %6.1f min  "
                "mean tokens %5.1f  %s\n",
                slo_jobs[j].trained.name().c_str(), slo_jobs[j].importance,
                slo_jobs[j].deadline / 60.0, r.CompletionSeconds() / 60.0, mean_tokens,
                met ? "[met]" : "[MISSED]");
  }
  // The conclusion of the paper: "when it is overloaded, utility-based resource
  // allocation ensures jobs are completed according to importance." Under a scarce
  // budget it is the least-important job that slips, never the critical one.
  std::printf("\n%s\n", all_met
                            ? "every SLO met within the shared budget"
                            : "budget pressure: the least-important job absorbed the "
                              "shortfall, protecting the critical SLOs");
  return 0;
}
