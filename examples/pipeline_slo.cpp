// Pipeline SLO: meeting a deadline on the *final* output of a chain of jobs.
//
// Section 2.5 motivates Jockey with job pipelines: "Because final outputs are often
// the product of a pipeline of jobs, a deadline on the final output leads to
// individual deadlines for many different jobs." This example runs a three-stage
// pipeline (ingest -> enrich -> publish) on one shared cluster. The pipeline deadline
// is decomposed into per-job deadlines proportional to each job's predicted
// standalone latency, each job gets its own JockeyController, and jobs are submitted
// as their predecessors finish.

#include <cstdio>
#include <vector>

#include "src/cluster/cluster_simulator.h"
#include "src/core/experiment.h"
#include "src/workload/job_generator.h"

namespace {

jockey::JobShapeSpec PipelineStage(const std::string& name, int stages, int vertices,
                                   uint64_t seed) {
  jockey::JobShapeSpec spec;
  spec.name = name;
  spec.num_stages = stages;
  spec.num_barriers = stages / 6;
  spec.num_vertices = vertices;
  spec.job_median_seconds = 4.0;
  spec.job_p90_seconds = 14.0;
  spec.fastest_stage_p90 = 1.5;
  spec.slowest_stage_p90 = 35.0;
  spec.seed = seed;
  return spec;
}

}  // namespace

int main() {
  using namespace jockey;

  // Train each pipeline member from one prior run.
  std::vector<TrainedJob> pipeline;
  pipeline.push_back(TrainJob(GenerateJob(PipelineStage("ingest", 8, 900, 11))));
  pipeline.push_back(TrainJob(GenerateJob(PipelineStage("enrich", 14, 1200, 12))));
  pipeline.push_back(TrainJob(GenerateJob(PipelineStage("publish", 6, 400, 13))));

  // End-to-end SLO: sum of suggested per-job deadlines (an operator would derive
  // these from the final-output contract; we split proportionally to prediction).
  double total_deadline = 0.0;
  std::vector<double> deadlines;
  for (const auto& job : pipeline) {
    deadlines.push_back(SuggestDeadlineSeconds(job, /*tight=*/true));
    total_deadline += deadlines.back();
  }
  std::printf("pipeline SLO: %.0f min end-to-end (", total_deadline / 60.0);
  for (size_t i = 0; i < pipeline.size(); ++i) {
    std::printf("%s%s %.0f", i ? ", " : "", pipeline[i].name().c_str(), deadlines[i] / 60.0);
  }
  std::printf(" min each)\n\n");

  // One shared cluster hosts the whole pipeline. Each member gets its own
  // controller; a member is submitted when its predecessor finishes (the ten-minute
  // median gap of Fig 1 collapses to the data-availability gap here).
  ClusterConfig config = DefaultExperimentCluster(99);
  ClusterSimulator cluster(config);

  std::vector<std::unique_ptr<JockeyController>> controllers;
  std::vector<int> ids;
  double submit_time = 0.0;
  double elapsed_budget = 0.0;
  for (size_t i = 0; i < pipeline.size(); ++i) {
    controllers.push_back(pipeline[i].jockey->MakeController(deadlines[i]));
    JobSubmission submission;
    submission.submit_time = submit_time;
    submission.controller = controllers.back().get();
    submission.seed = 500 + i;
    ids.push_back(cluster.SubmitJob(*pipeline[i].tmpl, submission));
    // Run until this member finishes so the next one starts on its output. (The
    // cluster keeps serving background demand meanwhile.)
    cluster.Run();
    const ClusterRunResult& r = cluster.result(ids.back());
    double latency = r.CompletionSeconds();
    elapsed_budget += deadlines[i];
    std::printf("%-8s finished %6.1f min after submit (budget %.0f min) %s\n",
                pipeline[i].name().c_str(), latency / 60.0, deadlines[i] / 60.0,
                latency <= deadlines[i] ? "[on time]" : "[LATE]");
    submit_time = r.trace.finish_time;
  }

  double end_to_end = cluster.result(ids.back()).trace.finish_time;
  std::printf("\nfinal output at %.1f min vs %.0f min pipeline SLO: %s\n", end_to_end / 60.0,
              total_deadline / 60.0, end_to_end <= total_deadline ? "MET" : "MISSED");
  return end_to_end <= total_deadline ? 0 : 1;
}
