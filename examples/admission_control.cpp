// Admission control: decide whether newly submitted SLO jobs "fit" the cluster.
//
// Section 1: "Jockey's job model can be used to check whether a newly submitted job
// would 'fit' in the cluster — that is, that all previously accepted SLO jobs would
// still be able to meet their deadlines — before permitting it to run."
//
// This example admits SLO jobs against a fixed guaranteed-token budget: a job is
// admitted if its own deadline is achievable with the tokens left over AND every
// previously admitted job still fits after setting aside the newcomer's worst-case
// demand. Admitted jobs then run concurrently on one shared cluster to validate the
// decisions.

#include <cstdio>
#include <vector>

#include "src/cluster/cluster_simulator.h"
#include "src/core/experiment.h"
#include "src/workload/job_generator.h"

namespace {

struct Candidate {
  jockey::TrainedJob trained;
  double deadline;
  int reserved_tokens = 0;  // worst-case tokens set aside when admitted
  bool admitted = false;
};

}  // namespace

int main() {
  using namespace jockey;
  const int kTokenBudget = 150;  // guaranteed tokens available for SLO jobs

  // Five candidate SLO jobs of varying size.
  std::vector<Candidate> candidates;
  Rng rng(31);
  for (int i = 0; i < 5; ++i) {
    RandomJobParams params;
    params.min_vertices = 400;
    params.max_vertices = 2500;
    TrainedJob trained = TrainJob(MakeRandomJob("slo" + std::to_string(i), rng));
    double deadline = SuggestDeadlineSeconds(trained, /*tight=*/true);
    candidates.push_back({std::move(trained), deadline, 0, false});
  }

  // Greedy admission: reserve each job's minimum token count whose slack-adjusted
  // worst-case prediction meets its deadline.
  int reserved = 0;
  std::printf("admission against a %d-token guaranteed budget:\n", kTokenBudget);
  for (auto& c : candidates) {
    const Jockey& model = *c.trained.jockey;
    int need = -1;
    for (int tokens = 1; tokens <= kTokenBudget - reserved; ++tokens) {
      if (model.WouldFit(c.deadline, tokens)) {
        need = tokens;
        break;
      }
    }
    if (need > 0) {
      c.admitted = true;
      c.reserved_tokens = need;
      reserved += need;
      std::printf("  %-6s deadline %3.0f min -> ADMIT, reserve %3d tokens (%d/%d used)\n",
                  c.trained.name().c_str(), c.deadline / 60.0, need, reserved, kTokenBudget);
    } else {
      std::printf("  %-6s deadline %3.0f min -> REJECT (would not fit)\n",
                  c.trained.name().c_str(), c.deadline / 60.0);
    }
  }

  // Validate: run every admitted job concurrently on one shared cluster, each under
  // its own Jockey controller capped at its reservation.
  ClusterConfig config = DefaultExperimentCluster(77);
  ClusterSimulator cluster(config);
  std::vector<std::unique_ptr<JockeyController>> controllers;
  std::vector<int> ids;
  std::vector<const Candidate*> admitted;
  for (const auto& c : candidates) {
    if (!c.admitted) {
      continue;
    }
    ControlLoopConfig control = c.trained.jockey->config().control;
    control.max_tokens = c.reserved_tokens;
    controllers.push_back(
        c.trained.jockey->MakeController(DeadlineUtility(c.deadline), control));
    JobSubmission submission;
    submission.controller = controllers.back().get();
    submission.max_guaranteed_tokens = c.reserved_tokens;
    submission.seed = 600 + ids.size();
    ids.push_back(cluster.SubmitJob(*c.trained.tmpl, submission));
    admitted.push_back(&c);
  }
  cluster.Run();

  std::printf("\nconcurrent validation run:\n");
  bool all_met = true;
  for (size_t i = 0; i < ids.size(); ++i) {
    const ClusterRunResult& r = cluster.result(ids[i]);
    bool met = r.finished && r.CompletionSeconds() <= admitted[i]->deadline;
    all_met = all_met && met;
    std::printf("  %-6s finished %6.1f min vs %3.0f min deadline: %s\n",
                admitted[i]->trained.name().c_str(), r.CompletionSeconds() / 60.0,
                admitted[i]->deadline / 60.0, met ? "met" : "MISSED");
  }
  std::printf("%s\n", all_met ? "all admitted jobs met their SLOs"
                              : "an admitted job missed its SLO");
  return all_met ? 0 : 1;
}
