// Deadline change: tighten an SLO mid-run and watch the control loop respond.
//
// Section 5.2 "Adapting to changes in deadlines": a future multi-job arbiter would
// shift resources between SLO jobs by changing their deadlines; the mechanism it
// relies on is the one shown here — ten minutes into the run, the deadline is cut in
// half and the controller must escalate the allocation (or, for an extended deadline,
// release resources for other jobs).

#include <cstdio>

#include "src/core/experiment.h"
#include "src/workload/job_generator.h"

namespace {

void Show(const char* label, const jockey::ExperimentResult& r, double change_at) {
  std::printf("%s: finished %.1f min vs %.0f min (%s)\n", label, r.completion_seconds / 60.0,
              r.deadline_seconds / 60.0, r.met_deadline ? "met" : "MISSED");
  double before = 0.0;
  double after = 0.0;
  int n_before = 0;
  int n_after = 0;
  for (const auto& s : r.run.timeline) {
    if (s.time < change_at) {
      before += s.guaranteed;
      ++n_before;
    } else {
      after += s.guaranteed;
      ++n_after;
    }
  }
  if (n_before > 0 && n_after > 0) {
    std::printf("  mean allocation before change: %.1f tokens, after: %.1f tokens (%+.0f%%)\n",
                before / n_before, after / n_after,
                100.0 * ((after / n_after) / (before / n_before) - 1.0));
  }
}

}  // namespace

int main() {
  using namespace jockey;

  TrainedJob trained = TrainJob(GenerateJob(JobSpecD()));
  double base = SuggestDeadlineSeconds(trained, /*tight=*/false);
  std::printf("job D trained; base deadline %.0f min, change injected at t=10 min\n\n",
              base / 60.0);

  {
    ExperimentOptions options;
    options.deadline_seconds = base;
    options.deadline_change = DeadlineChange(600.0, base / 2.0);
    options.policy = PolicyKind::kJockey;
    options.jitter_input = false;
    options.seed = 21;
    Show("deadline halved ", RunExperiment(trained, options), 600.0);
  }
  {
    ExperimentOptions options;
    options.deadline_seconds = base;
    options.deadline_change = DeadlineChange(600.0, base * 3.0);
    options.policy = PolicyKind::kJockey;
    options.jitter_input = false;
    options.seed = 22;
    Show("deadline tripled", RunExperiment(trained, options), 600.0);
  }
  std::printf("\n(paper: halving required +148%% allocation on average; tripling\n");
  std::printf(" released 83%% of the allocated resources)\n");
  return 0;
}
