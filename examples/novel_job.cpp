// Novel job onboarding: give an SLO to a job Jockey has never seen.
//
// Section 4.4 leaves novel-job support to "sampling or other methods". This example
// shows the sampling path end-to-end:
//   1. build a pilot copy of the job that processes 15% of the input;
//   2. run the pilot on the shared cluster (cheap — a sixth of the work);
//   3. extrapolate the pilot's trace into a full-job profile;
//   4. build the Jockey model from the extrapolated profile, pick a feasible SLO,
//      and run the full job under the control loop.

#include <cstdio>

#include "src/cluster/cluster_simulator.h"
#include "src/core/experiment.h"
#include "src/core/pilot.h"
#include "src/workload/job_generator.h"

int main() {
  using namespace jockey;

  // The "novel" job: nobody has run it before.
  JobShapeSpec spec;
  spec.name = "novel-etl";
  spec.num_stages = 14;
  spec.num_barriers = 3;
  spec.num_vertices = 2200;
  spec.job_median_seconds = 4.5;
  spec.job_p90_seconds = 16.0;
  spec.fastest_stage_p90 = 2.0;
  spec.slowest_stage_p90 = 40.0;
  spec.seed = 777;
  JobTemplate full = GenerateJob(spec);
  std::printf("novel job: %d stages, %d tasks — no prior runs available\n",
              full.graph.num_stages(), full.graph.num_tasks());

  // 1-2. Pilot at 15% of the input.
  JobTemplate pilot = MakePilotJob(full, 0.15);
  std::printf("pilot copy: %d tasks (%.0f%% of the input)\n", pilot.graph.num_tasks(),
              100.0 * pilot.graph.num_tasks() / full.graph.num_tasks());

  ClusterConfig config = DefaultExperimentCluster(808);
  RunTrace pilot_trace;
  {
    ClusterSimulator cluster(config);
    JobSubmission submission;
    submission.guaranteed_tokens = 15;
    submission.seed = 81;
    int id = cluster.SubmitJob(pilot, submission);
    cluster.Run();
    pilot_trace = cluster.result(id).trace;
  }
  std::printf("pilot run: %.1f min, %.1f token-hours\n",
              pilot_trace.CompletionSeconds() / 60.0, pilot_trace.TotalWorkSeconds() / 3600.0);

  // 3-4. Extrapolate and build the model.
  JobProfile estimated = ExtrapolateProfile(full.graph, pilot.graph, pilot_trace);
  std::printf("extrapolated full-job work estimate: %.1f token-hours\n",
              estimated.TotalWorkSeconds() / 3600.0);
  Jockey jockey(full.graph, std::move(estimated));

  double deadline = 60.0 * std::ceil(1.5 * jockey.PredictCompletionSeconds(40) / 60.0);
  std::printf("chosen SLO: %.0f min (1.5x the worst-case prediction at 40 tokens)\n\n",
              deadline / 60.0);

  auto controller = jockey.MakeController(deadline);
  ClusterSimulator cluster(config);
  JobSubmission submission;
  submission.controller = controller.get();
  submission.seed = 82;
  int id = cluster.SubmitJob(full, submission);
  cluster.Run();
  const ClusterRunResult& r = cluster.result(id);

  bool met = r.finished && r.CompletionSeconds() <= deadline;
  std::printf("full job finished in %.1f min vs %.0f min SLO: %s\n",
              r.CompletionSeconds() / 60.0, deadline / 60.0, met ? "MET" : "MISSED");
  std::printf("actual work: %.1f token-hours (pilot estimated %.1f)\n",
              r.trace.TotalWorkSeconds() / 3600.0,
              jockey.profile().TotalWorkSeconds() / 3600.0);
  return met ? 0 : 1;
}
