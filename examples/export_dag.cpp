// Export the stage-dependency diagrams of the seven evaluation jobs (Fig 3).
//
// Writes one Graphviz .dot file per job into the current directory (or the directory
// given as argv[1]). Render with: dot -Tpng jobA.dot -o jobA.png
// Blue triangles are full-shuffle (barrier) stages; node size tracks task count —
// the same visual language as the paper's Fig 3.

#include <cstdio>
#include <fstream>
#include <string>

#include "src/workload/job_generator.h"

int main(int argc, char** argv) {
  using namespace jockey;
  std::string dir = argc > 1 ? argv[1] : ".";
  for (const auto& spec : EvaluationJobSpecs()) {
    JobTemplate job = GenerateJob(spec);
    std::string path = dir + "/" + spec.name + ".dot";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << job.graph.ToDot();
    std::printf("%-6s -> %s  (%d stages, %d barriers, %d vertices)\n", spec.name.c_str(),
                path.c_str(), job.graph.num_stages(), job.graph.num_barrier_stages(),
                job.graph.num_tasks());
  }
  std::printf("render with: dot -Tpng <file>.dot -o <file>.png\n");
  return 0;
}
