// jockey_cli: the operator-facing command line.
//
// Workflows mirror how an SLO job is onboarded in the paper:
//
//   jockey_cli compile job.scope
//       Compile a SCOPE-like script and print the execution plan (stages, widths,
//       barriers, optimizer notes).
//
//   jockey_cli train job.scope --trace trace.txt [--tokens N]
//       Execute one training run of the compiled job on the simulated shared cluster
//       and save its trace — the "readily available prior execution" Jockey models.
//
//   jockey_cli predict job.scope trace.txt [--deadline MIN]
//       Build the Jockey model from the trace; print the critical path, worst-case
//       completion predictions across allocations, and (with --deadline) the
//       admission verdict and a-priori allocation.
//
//   jockey_cli run job.scope trace.txt --deadline MIN [--seed S]
//       Run the job on the shared cluster under the Jockey control loop against the
//       deadline; print the outcome and the allocation timeline.
//
//   jockey_cli report trace.jsonl
//       Read a --trace-out capture back and render it: event totals, the control
//       loop's decision timeline (progress, prediction, raw/smoothed/granted
//       allocation — the Fig 6 view), kills by reason, cache activity. --chrome-out
//       converts the capture for chrome://tracing; --jsonl-out re-emits it (a
//       byte-identical copy, which the round-trip test checks).
//
//   jockey_cli chaos job.scope trace.txt --deadline MIN [--seeds N] [--classes LIST]
//       Seeded fault-matrix sweep: for each fault class (progress-report dropout /
//       staleness / noise, controller blackouts, token-grant shortfalls, C(p,a)
//       table faults, correlated machine bursts) run the same faulted cluster twice
//       per seed — vanilla controller vs. degraded-mode hardening — and report
//       deadline-miss rates and allocation churn per class, attributing every miss
//       to the fault window that dominated the run; adversarial-spike misses also
//       report how many task dispatches landed in the spike's on-phase. --fault-plan
//       loads a custom JSONL schedule instead of the built-in per-class defaults.
//
//   jockey_cli postmortem trace.jsonl [--deadline MIN] [--json FILE] [--strict]
//       Deadline-miss postmortem of a --trace-out capture (single- or multi-run):
//       reconstruct task-attempt spans, walk the realized critical path, attribute
//       each job's wall-clock into queue / control-lag / degraded / exec / rework /
//       speculation components that sum to its completion time, and report the
//       predictor's signed-error calibration per progress decile. --deadline adds
//       the miss/meet verdict and a top-3 blame ranking; --json writes the
//       byte-deterministic machine-readable form.
//
//   jockey_cli tune job.scope trace.txt --deadline MIN [--seeds N] [--knob-points K]
//       Sweep the hardened controller's four degraded-mode knobs (stale-hold,
//       blind-escalation rate, blackout gap factor, grant-ratio EWMA) across the
//       chaos matrix, one knob varied at a time against the defaults. Candidates
//       are ranked by (deadline misses, non-exec postmortem attribution, churn);
//       a candidate is feasible only if it misses no more than the defaults on
//       *every* class, so the selected setting never trades one fault class for
//       another. --bench-out writes the machine-readable BENCH_tune.json.
//
//   jockey_cli timeline timeseries.jsonl [--json FILE] [--csv FILE]
//       Render a --timeseries-out capture: cluster utilization / spare-pool
//       timelines, per-job allocation and deadline-slack series, and the SLO health
//       transitions (on_track / at_risk / missed). --run/--job narrow the view,
//       --at-risk-only keeps just the jobs whose health ever left on_track; --json
//       and --csv write byte-deterministic machine-readable forms.
//
//   jockey_cli dot job.scope
//       Print the plan as Graphviz.
//
// Every subcommand takes --help plus the shared flags (cli_options.h): --trace-out
// streams the run's trace events as JSONL, --metrics-out dumps the counter/histogram
// registry, --timeseries-out samples the utilization/SLO-health timelines for
// `timeline`, --profile enables the control-plane profiler and writes its call-path
// stats, and --threads/--cache-dir/--no-cache/--cache-max-bytes steer the C(p,a)
// model build and its LRU-pruned on-disk cache.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/cluster/cluster_simulator.h"
#include "src/core/experiment.h"
#include "src/fault/chaos_matrix.h"
#include "src/fault/fault_injector.h"
#include "src/obs/analysis/postmortem.h"
#include "src/obs/async_jsonl.h"
#include "src/obs/jsonl.h"
#include "src/obs/metrics.h"
#include "src/obs/observer.h"
#include "src/obs/prof/profiler.h"
#include "src/obs/timeseries/timeseries.h"
#include "src/scenario/catalog.h"
#include "src/scenario/compiler.h"
#include "src/scenario/orchestrator.h"
#include "src/scenario/spec.h"
#include "src/scope/planner.h"
#include "tools/cli_options.h"

namespace jockey {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  jockey_cli compile <job.scope>\n"
               "  jockey_cli dot <job.scope>\n"
               "  jockey_cli train <job.scope> --trace <out.txt> [--tokens N] [--seed S]\n"
               "  jockey_cli predict <job.scope> <trace.txt> [--deadline MIN]\n"
               "  jockey_cli run <job.scope> <trace.txt> --deadline MIN [--seed S]\n"
               "  jockey_cli run <scenario.yaml|.json> [--json FILE] [--episodes-out FILE]\n"
               "  jockey_cli chaos <job.scope> <trace.txt> --deadline MIN [--seeds N]\n"
               "                   [--classes LIST] [--fault-plan FILE] [--seed S]\n"
               "  jockey_cli chaos --list-classes\n"
               "  jockey_cli tune <job.scope> <trace.txt> --deadline MIN [--seeds N]\n"
               "                   [--classes LIST] [--knob-points K] [--bench-out FILE]\n"
               "  jockey_cli report <trace.jsonl> [--chrome-out FILE] [--jsonl-out FILE]\n"
               "  jockey_cli postmortem <trace.jsonl> [--deadline MIN] [--json FILE]\n"
               "                   [--strict]\n"
               "  jockey_cli timeline <timeseries.jsonl> [--json FILE] [--csv FILE]\n"
               "                   [--run N] [--job N] [--at-risk-only]\n"
               "run '<command> --help' for the command's flags; all commands accept\n"
               "--trace-out FILE, --metrics-out FILE, --timeseries-out FILE,\n"
               "--profile FILE and the model-cache flags.\n");
  return 2;
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Owns the sinks selected by --trace-out/--metrics-out/--timeseries-out/--profile
// for one command's lifetime. observer() hands out the two-pointer handle that the
// cluster, controller and model build store; timeseries() the recorder that
// RunExperiment / the cluster attach; Finish() flushes every snapshot and reports
// I/O failures.
class CliObservability {
 public:
  explicit CliObservability(const GlobalOptions& options) : options_(options) {
    if (!options_.trace_out.empty()) {
      trace_stream_ = std::make_unique<std::ofstream>(options_.trace_out);
      if (*trace_stream_) {
        // Async: formatting and file I/O run on the sink's writer thread, off the
        // simulation hot loop. Byte-identical to the synchronous JsonlSink.
        sink_ = std::make_unique<AsyncJsonlSink>(*trace_stream_);
      } else {
        std::fprintf(stderr, "cannot write %s\n", options_.trace_out.c_str());
        failed_ = true;
      }
    }
    if (!options_.metrics_out.empty()) {
      metrics_ = std::make_unique<MetricsRegistry>();
    }
    if (!options_.timeseries_out.empty()) {
      timeseries_ = std::make_unique<TimeSeriesRecorder>();
    }
    if (!options_.profile_out.empty()) {
      prof::Reset();
      prof::SetEnabled(true);
    }
  }

  ~CliObservability() {
    if (!options_.profile_out.empty()) {
      prof::SetEnabled(false);
    }
  }

  bool ok() const { return !failed_; }

  Observer observer() const { return Observer(sink_.get(), metrics_.get()); }
  TimeSeriesRecorder* timeseries() const { return timeseries_.get(); }

  // Returns 0 on success, 1 if any output file could not be written.
  int Finish() {
    if (metrics_ != nullptr) {
      std::ofstream out(options_.metrics_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", options_.metrics_out.c_str());
        return 1;
      }
      metrics_->WriteJson(out);
    }
    if (timeseries_ != nullptr) {
      std::ofstream out(options_.timeseries_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", options_.timeseries_out.c_str());
        return 1;
      }
      WriteTimeSeriesJsonl(out, timeseries_->Snapshot());
      if (!out) {
        std::fprintf(stderr, "error writing %s\n", options_.timeseries_out.c_str());
        return 1;
      }
    }
    if (!options_.profile_out.empty()) {
      prof::SetEnabled(false);
      std::ofstream out(options_.profile_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", options_.profile_out.c_str());
        return 1;
      }
      prof::WriteProfileJson(out);
    }
    if (trace_stream_ != nullptr) {
      if (sink_ != nullptr) {
        sink_->Flush();  // drain the writer thread before checking stream health
      }
      trace_stream_->flush();
      if (!*trace_stream_) {
        std::fprintf(stderr, "error writing %s\n", options_.trace_out.c_str());
        return 1;
      }
    }
    return failed_ ? 1 : 0;
  }

 private:
  GlobalOptions options_;
  std::unique_ptr<std::ofstream> trace_stream_;
  std::unique_ptr<AsyncJsonlSink> sink_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<TimeSeriesRecorder> timeseries_;
  bool failed_ = false;
};

std::optional<PlanResult> CompileFile(const std::string& path) {
  auto source = ReadFile(path);
  if (!source.has_value()) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  PlannerOptions options;
  options.job_name = path;
  PlanResult plan = CompileScopeScript(*source, options);
  if (!plan.ok) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), plan.error.c_str());
    return std::nullopt;
  }
  return plan;
}

int CmdCompile(const std::string& path) {
  auto plan = CompileFile(path);
  if (!plan.has_value()) {
    return 1;
  }
  const JobGraph& g = plan->job.graph;
  std::printf("plan: %d stages, %d tasks, %d barrier stages\n", g.num_stages(), g.num_tasks(),
              g.num_barrier_stages());
  for (int s = 0; s < g.num_stages(); ++s) {
    std::printf("  [%2d] %-24s %5d tasks  cost %.1fs%s", s, g.stage(s).name.c_str(),
                g.stage(s).num_tasks, plan->job.runtime[static_cast<size_t>(s)].median_seconds,
                g.stage(s).IsBarrier() ? "  (barrier)" : "");
    if (!g.stage(s).inputs.empty()) {
      std::printf("  <-");
      for (const auto& e : g.stage(s).inputs) {
        std::printf(" %s", g.stage(e.from).name.c_str());
      }
    }
    std::printf("\n");
  }
  for (const auto& note : plan->notes) {
    std::printf("  note: %s\n", note.c_str());
  }
  return 0;
}

int CmdDot(const std::string& path) {
  auto plan = CompileFile(path);
  if (!plan.has_value()) {
    return 1;
  }
  std::printf("%s", plan->job.graph.ToDot().c_str());
  return 0;
}

int CmdTrain(int argc, char** argv, const std::string& path) {
  std::string trace_path;
  int tokens = 40;
  uint64_t seed = 1;
  GlobalOptions global;
  OptionsParser parser("jockey_cli train <job.scope> --trace <out.txt> [flags]");
  parser.AddString("--trace", "FILE", "where to save the training trace (required)", &trace_path);
  parser.AddInt("--tokens", "N", "guaranteed tokens for the training run", &tokens);
  parser.AddUint64("--seed", "S", "cluster seed for the training run", &seed);
  global.Register(parser);
  if (path == "--help" || path == "-h") {
    parser.PrintHelp(stdout);
    return 0;
  }
  if (!parser.Parse(argc, argv, 3)) {
    return 2;
  }
  if (parser.help_requested()) {
    return 0;
  }
  if (trace_path.empty()) {
    std::fprintf(stderr, "train requires --trace <out.txt>\n");
    return 2;
  }
  auto plan = CompileFile(path);
  if (!plan.has_value()) {
    return 1;
  }
  CliObservability obs(global);
  if (!obs.ok()) {
    return 1;
  }
  ClusterConfig config = DefaultExperimentCluster(seed);
  config.background.overload_rate_per_hour = 0.0;
  ClusterSimulator cluster(config);
  cluster.set_observer(obs.observer());
  if (obs.timeseries() != nullptr) {
    // Training runs have no SLO; the health machine stays inert but the
    // utilization/allocation series still record.
    obs.timeseries()->set_observer(obs.observer());
    obs.timeseries()->BeginRun(/*deadline_seconds=*/-1.0);
    cluster.set_timeseries_recorder(obs.timeseries());
  }
  JobSubmission submission;
  submission.guaranteed_tokens = tokens;
  submission.seed = seed * 7919 + 13;
  int id = cluster.SubmitJob(plan->job, submission);
  cluster.Run();
  const ClusterRunResult& r = cluster.result(id);
  if (!r.finished) {
    std::fprintf(stderr, "training run did not finish\n");
    return 1;
  }
  std::ofstream out(trace_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }
  r.trace.Save(out);
  std::printf("training run: %.1f min at %d guaranteed tokens, %.1f token-hours of work\n",
              r.CompletionSeconds() / 60.0, tokens, r.trace.TotalWorkSeconds() / 3600.0);
  std::printf("trace saved to %s (%zu task records)\n", trace_path.c_str(), r.trace.tasks.size());
  return obs.Finish();
}

std::optional<Jockey> BuildModel(const PlanResult& plan, const std::string& trace_path,
                                 const GlobalOptions& global, Observer observer) {
  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", trace_path.c_str());
    return std::nullopt;
  }
  RunTrace trace = RunTrace::Load(in);
  if (static_cast<int>(trace.tasks.size()) != plan.job.graph.num_tasks()) {
    std::fprintf(stderr, "trace has %zu tasks but the plan has %d — wrong trace?\n",
                 trace.tasks.size(), plan.job.graph.num_tasks());
    return std::nullopt;
  }
  JockeyConfig config;
  config.model.threads = global.threads;
  if (global.use_cache) {
    config.model.cache_dir = global.cache_dir;
    config.model.cache_max_bytes = global.cache_max_bytes;
  }
  config.model.observer = observer;
  Jockey model(plan.job.graph, trace, config);
  const CompletionModelBuildStats& stats = model.table_build_stats();
  if (stats.cache_hit) {
    std::printf("C(p,a) table: warm cache hit in %s — skipped simulation\n",
                global.cache_dir.c_str());
  } else {
    std::printf("C(p,a) table: simulated %d runs on %d thread%s%s\n", stats.simulated_runs,
                stats.threads_used, stats.threads_used == 1 ? "" : "s",
                global.use_cache ? " (cached for next time)" : "");
  }
  return model;
}

int CmdPredict(int argc, char** argv, const std::string& path, const std::string& trace_path) {
  double deadline_minutes = -1.0;
  GlobalOptions global;
  OptionsParser parser("jockey_cli predict <job.scope> <trace.txt> [flags]");
  parser.AddDouble("--deadline", "MIN", "deadline in minutes for the admission verdict",
                   &deadline_minutes);
  global.Register(parser);
  if (path == "--help" || path == "-h") {
    parser.PrintHelp(stdout);
    return 0;
  }
  if (!parser.Parse(argc, argv, 4)) {
    return 2;
  }
  if (parser.help_requested()) {
    return 0;
  }
  auto plan = CompileFile(path);
  if (!plan.has_value()) {
    return 1;
  }
  CliObservability obs(global);
  if (!obs.ok()) {
    return 1;
  }
  auto model = BuildModel(*plan, trace_path, global, obs.observer());
  if (!model.has_value()) {
    return 1;
  }
  std::printf("critical path (minimum feasible deadline): %.1f min\n",
              model->FeasibleDeadlineSeconds() / 60.0);
  std::printf("worst-case completion predictions:\n");
  for (int tokens : {5, 10, 20, 40, 60, 80, 100}) {
    std::printf("  %3d tokens -> %6.1f min\n", tokens,
                model->PredictCompletionSeconds(tokens) / 60.0);
  }
  if (deadline_minutes > 0.0) {
    double deadline = deadline_minutes * 60.0;
    bool fits = model->WouldFit(deadline, 100);
    std::printf("deadline %.0f min: %s", deadline_minutes, fits ? "FITS" : "does NOT fit");
    if (fits) {
      std::printf(" (a-priori allocation: %d tokens)", model->InitialAllocation(deadline));
    }
    std::printf("\n");
  }
  return obs.Finish();
}

// True for the declarative-scenario form of `run` (workloads as data, spec.h).
bool IsScenarioPath(const std::string& path) {
  for (const char* suffix : {".yaml", ".yml", ".json"}) {
    std::string ext(suffix);
    if (path.size() > ext.size() && path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
      return true;
    }
  }
  return false;
}

int CmdRunScenario(int argc, char** argv, const std::string& path) {
  std::string json_out;
  std::string episodes_out;
  bool decision_cache = false;
  GlobalOptions global;
  OptionsParser parser("jockey_cli run <scenario.yaml|.json> [flags]");
  parser.AddString("--json", "FILE", "write the scenario summary JSON here", &json_out);
  parser.AddString("--episodes-out", "FILE", "write one JSONL record per episode here",
                   &episodes_out);
  parser.AddFlag("--decision-cache",
                 "memoize control-plane candidate scans (decisions are unchanged; the "
                 "trace gains control_decision_cached marker events)",
                 &decision_cache);
  global.Register(parser);
  if (!parser.Parse(argc, argv, 3)) {
    return 2;
  }
  if (parser.help_requested()) {
    return 0;
  }
  auto text = ReadFile(path);
  if (!text.has_value()) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  ScenarioParseResult parsed = ParseScenarioText(*text);
  if (!parsed.spec.has_value()) {
    std::fprintf(stderr, "%s\n", FormatScenarioIssue(path, *parsed.issue).c_str());
    return 1;
  }
  if (decision_cache) {
    if (!parsed.spec->control.has_value()) {
      parsed.spec->control.emplace();
    }
    parsed.spec->control->decision_cache = true;
  }
  CliObservability obs(global);
  if (!obs.ok()) {
    return 1;
  }
  JobCatalogOptions catalog_options;
  catalog_options.threads = global.threads;
  if (global.use_cache) {
    catalog_options.cache_dir = global.cache_dir;
    catalog_options.cache_max_bytes = global.cache_max_bytes;
  }
  JobCatalog catalog(catalog_options);
  ScenarioCompileOptions compile_options;
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    compile_options.base_dir = path.substr(0, slash);
  }
  compile_options.observer = obs.observer();
  compile_options.timeseries = obs.timeseries();
  ScenarioOutcome outcome;
  try {
    CompiledScenario compiled = CompileScenario(*parsed.spec, catalog, compile_options);
    std::printf("scenario %s: %d episode%s\n", parsed.spec->name.c_str(),
                static_cast<int>(compiled.episodes.size()),
                compiled.episodes.size() == 1 ? "" : "s");
    outcome = RunScenario(compiled);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 1;
  }
  PrintScenarioSummary(stdout, outcome);
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    WriteScenarioSummaryJson(out, outcome);
  }
  if (!episodes_out.empty()) {
    std::ofstream out(episodes_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", episodes_out.c_str());
      return 1;
    }
    for (const EpisodeOutcome& episode : outcome.episodes) {
      out << WriteEpisodeJsonl(episode) << '\n';
    }
  }
  // SLO misses are the scenario's *data*, not a tool failure: exit 0 so sweeps over
  // scenario directories (CI smoke included) distinguish broken runs from bad SLOs.
  return obs.Finish();
}

int CmdRun(int argc, char** argv, const std::string& path, const std::string& trace_path) {
  double deadline_minutes = -1.0;
  uint64_t seed = 1;
  GlobalOptions global;
  OptionsParser parser("jockey_cli run <job.scope> <trace.txt> --deadline MIN [flags]");
  parser.AddDouble("--deadline", "MIN", "deadline in minutes (required)", &deadline_minutes);
  parser.AddUint64("--seed", "S", "cluster seed for the run", &seed);
  global.Register(parser);
  if (path == "--help" || path == "-h") {
    parser.PrintHelp(stdout);
    return 0;
  }
  if (!parser.Parse(argc, argv, 4)) {
    return 2;
  }
  if (parser.help_requested()) {
    return 0;
  }
  if (deadline_minutes <= 0.0) {
    std::fprintf(stderr, "run requires --deadline <minutes>\n");
    return 2;
  }
  auto plan = CompileFile(path);
  if (!plan.has_value()) {
    return 1;
  }
  CliObservability obs(global);
  if (!obs.ok()) {
    return 1;
  }
  auto model = BuildModel(*plan, trace_path, global, obs.observer());
  if (!model.has_value()) {
    return 1;
  }
  double deadline = deadline_minutes * 60.0;
  auto controller = model->MakeController(deadline);
  controller->set_observer(obs.observer(), /*job_label=*/0);
  ClusterConfig config = DefaultExperimentCluster(seed * 2654435761ULL + 17);
  ClusterSimulator cluster(config);
  cluster.set_observer(obs.observer());
  if (obs.timeseries() != nullptr) {
    obs.timeseries()->set_observer(obs.observer());
    obs.timeseries()->BeginRun(deadline);
    cluster.set_timeseries_recorder(obs.timeseries());
  }
  JobSubmission submission;
  submission.controller = controller.get();
  submission.seed = seed * 104729 + 71;
  int id = cluster.SubmitJob(plan->job, submission);
  cluster.Run();
  const ClusterRunResult& r = cluster.result(id);
  bool met = r.finished && r.CompletionSeconds() <= deadline;
  std::printf("finished in %.1f min vs %.0f min deadline: %s\n", r.CompletionSeconds() / 60.0,
              deadline_minutes, met ? "SLO MET" : "SLO MISSED");
  std::printf("%8s %10s %8s\n", "t[min]", "granted", "running");
  size_t step = std::max<size_t>(1, r.timeline.size() / 20);
  for (size_t i = 0; i < r.timeline.size(); i += step) {
    std::printf("%8.1f %10d %8d\n", r.timeline[i].time / 60.0, r.timeline[i].guaranteed,
                r.timeline[i].running);
  }
  if (obs.Finish() != 0) {
    return 1;
  }
  return met ? 0 : 1;
}

// Allocation churn from the trace: how many times the granted-token level changed
// (AllocationChangeEvents) and how many tokens moved in total (summed |delta|). The
// hardened controller's stale-hold should *reduce* churn under dropout; escalation
// under blindness trades churn for safety, which the table makes visible — and the
// thrash bound below keeps that trade from degenerating into allocation thrash.
struct ChurnStats {
  int changes = 0;
  double moved_tokens = 0.0;
};

ChurnStats AllocationChurn(const std::vector<TraceEvent>& events) {
  ChurnStats churn;
  for (const TraceEvent& event : events) {
    if (const auto* change = std::get_if<AllocationChangeEvent>(&event.payload)) {
      ++churn.changes;
      churn.moved_tokens += std::abs(change->to_tokens - change->from_tokens);
    }
  }
  return churn;
}

// Top postmortem blame component of a missed run, e.g. "degraded 312.5s".
std::string MissBlame(const std::vector<TraceEvent>& events, double deadline) {
  PostmortemOptions options;
  options.deadline_seconds = deadline;
  PostmortemReport report = BuildPostmortem(events, options);
  const BudgetComponent* top = nullptr;
  std::vector<BudgetComponent> components;
  for (const JobPostmortem& job : report.jobs) {
    if (!job.finished) {
      continue;
    }
    components = BudgetComponents(job.budget);
    for (const BudgetComponent& c : components) {
      if (std::string(c.name) == "exec") {
        continue;
      }
      if (top == nullptr || c.seconds > top->seconds) {
        top = &c;
      }
    }
    break;  // chaos runs one job per trace segment
  }
  if (top == nullptr || top->seconds <= 0.0) {
    return "no waiting or rework attributed";
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %.1fs", top->name, top->seconds);
  return buf;
}

// Join of the adversarial spike's on-phase windows against per-attempt dispatch
// times: of the dispatches inside spike windows that actually bit (appear as
// fault_injected events in the trace), how many landed in the on-phase — the half
// of each period where dispatched work runs slow. A share far above the 50% duty
// cycle is the phase-locked-sampling pathology made visible: the controller keeps
// reacting to the same phase it samples, so its dispatch bursts line up with the
// spike. `injector` must be built from the run's own (per-seed) plan — the phase
// offsets are a pure function of the plan seed, so a fresh injector reproduces the
// run's exact on-phase windows.
struct SpikeDispatchJoin {
  int in_window = 0;  // dispatches inside any spike window that bit
  int on_phase = 0;   // of those, dispatches during the spike's on-phase
};
SpikeDispatchJoin JoinSpikeDispatches(const std::vector<TraceEvent>& events,
                                      const FaultInjector& injector) {
  std::vector<const FaultWindow*> windows;
  for (const TraceEvent& event : events) {
    if (const auto* fault = std::get_if<FaultInjectedEvent>(&event.payload)) {
      if (fault->fault == FaultKind::kAdversarialSpike) {
        windows.push_back(
            &injector.plan().windows()[static_cast<size_t>(fault->window)]);
      }
    }
  }
  SpikeDispatchJoin join;
  if (windows.empty()) {
    return join;
  }
  for (const TraceEvent& event : events) {
    if (std::get_if<TaskDispatchEvent>(&event.payload) == nullptr) {
      continue;
    }
    bool covered = false;
    for (const FaultWindow* w : windows) {
      if (w->Contains(event.time_seconds)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      continue;
    }
    ++join.in_window;
    if (injector.SpikeBoost(event.time_seconds) > 0.0) {
      ++join.on_phase;
    }
  }
  return join;
}

// Prints the chaos-matrix class names, one per line, in matrix order (the order
// `chaos` sweeps them). Shared by `chaos --list-classes` and the help texts.
void PrintChaosClasses(std::FILE* out) {
  for (const std::string& name : ChaosClassNames()) {
    std::fprintf(out, "%s\n", name.c_str());
  }
}

// One "a, b, c" line of every chaos class, for --help footers.
std::string ChaosClassListLine() {
  std::string line;
  for (const std::string& name : ChaosClassNames()) {
    if (!line.empty()) {
      line += ", ";
    }
    line += name;
  }
  return line;
}

int CmdChaos(int argc, char** argv, const std::string& path, const std::string& trace_path) {
  double deadline_minutes = -1.0;
  uint64_t first_seed = 1;
  int seeds = 5;
  std::string classes = "all";
  std::string fault_plan_path;
  bool list_classes = false;
  GlobalOptions global;
  OptionsParser parser("jockey_cli chaos <job.scope> <trace.txt> --deadline MIN [flags]");
  parser.AddDouble("--deadline", "MIN", "deadline in minutes (required)", &deadline_minutes);
  parser.AddInt("--seeds", "N", "runs per fault class and controller", &seeds);
  parser.AddUint64("--seed", "S", "first seed of the sweep", &first_seed);
  parser.AddString("--classes", "LIST",
                   "comma-separated fault classes to sweep (default: all)", &classes);
  parser.AddString("--fault-plan", "FILE",
                   "sweep one custom JSONL fault schedule instead of the built-in matrix",
                   &fault_plan_path);
  parser.AddFlag("--list-classes", "print the fault classes in matrix order and exit",
                 &list_classes);
  global.Register(parser);
  if (path == "--list-classes") {
    PrintChaosClasses(stdout);
    return 0;
  }
  if (path == "--help" || path == "-h") {
    parser.PrintHelp(stdout);
    std::printf("fault classes (matrix order): %s\n", ChaosClassListLine().c_str());
    return 0;
  }
  if (!parser.Parse(argc, argv, 4)) {
    return 2;
  }
  if (parser.help_requested()) {
    std::printf("fault classes (matrix order): %s\n", ChaosClassListLine().c_str());
    return 0;
  }
  if (list_classes) {
    PrintChaosClasses(stdout);
    return 0;
  }
  if (deadline_minutes <= 0.0) {
    std::fprintf(stderr, "chaos requires --deadline <minutes>\n");
    return 2;
  }
  if (seeds < 1) {
    std::fprintf(stderr, "--seeds must be >= 1\n");
    return 2;
  }
  auto plan = CompileFile(path);
  if (!plan.has_value()) {
    return 1;
  }
  CliObservability obs(global);
  if (!obs.ok()) {
    return 1;
  }
  auto model = BuildModel(*plan, trace_path, global, obs.observer());
  if (!model.has_value()) {
    return 1;
  }
  const double deadline = deadline_minutes * 60.0;

  std::vector<ChaosClass> matrix;
  if (!fault_plan_path.empty()) {
    std::ifstream in(fault_plan_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", fault_plan_path.c_str());
      return 1;
    }
    std::string error;
    std::optional<FaultPlan> custom = FaultPlan::Load(in, &error);
    if (!custom.has_value()) {
      std::fprintf(stderr, "bad fault plan %s: %s\n", fault_plan_path.c_str(), error.c_str());
      return 1;
    }
    matrix.push_back({"custom", std::move(*custom)});
  } else {
    ClusterConfig reference = DefaultExperimentCluster(0);
    std::vector<ChaosClass> all = BuildChaosMatrix(deadline, reference.num_machines);
    if (classes == "all" || classes.empty()) {
      matrix = std::move(all);
    } else {
      std::stringstream list(classes);
      std::string token;
      while (std::getline(list, token, ',')) {
        bool known = false;
        for (const ChaosClass& entry : all) {
          if (entry.name == token) {
            matrix.push_back(entry);
            known = true;
            break;
          }
        }
        if (!known) {
          std::fprintf(stderr, "unknown fault class '%s' (see --help)\n", token.c_str());
          return 2;
        }
      }
    }
  }
  if (matrix.empty()) {
    std::fprintf(stderr, "no fault classes selected\n");
    return 2;
  }

  // RunExperiment wants a TrainedJob; wrap the already-built model without copying
  // it (the aliasing shared_ptr does not own — `model` outlives every run).
  TrainedJob trained;
  trained.tmpl = std::make_shared<const JobTemplate>(plan->job);
  trained.jockey = std::shared_ptr<const Jockey>(std::shared_ptr<const Jockey>(), &*model);

  ControlLoopConfig hardened_control = model->config().control;
  hardened_control.enable_degraded_mode = true;

  struct Miss {
    std::string cls;
    bool hardened = false;
    uint64_t seed = 0;
    double completion_seconds = 0.0;
    const FaultWindow* window = nullptr;
    std::string blame;  // top postmortem budget component
    // Spike-vs-dispatch join; in_window stays 0 for classes without spikes.
    SpikeDispatchJoin spikes;
  };
  std::vector<Miss> misses;
  // Attribution injectors must outlive the Miss::window pointers into their plans.
  std::vector<std::unique_ptr<FaultInjector>> attribution;

  std::printf("chaos sweep: %d fault class%s x %d seed%s, deadline %.0f min, "
              "vanilla vs hardened controller\n",
              static_cast<int>(matrix.size()), matrix.size() == 1 ? "" : "es", seeds,
              seeds == 1 ? "" : "s", deadline_minutes);
  std::printf("(input jitter pinned off so differences are the faults' doing)\n\n");
  std::printf("%-17s %5s  %11s %11s  %9s %9s %10s %10s\n", "fault class", "runs",
              "miss(van)", "miss(hard)", "churn(van)", "churn(hard)", "|dtok|(van)",
              "|dtok|(hard)");

  int classes_won = 0;
  int classes_tied = 0;
  bool thrash_ok = true;
  for (const ChaosClass& cls : matrix) {
    attribution.push_back(std::make_unique<FaultInjector>(cls.plan));
    const FaultInjector& attributor = *attribution.back();
    int miss_count[2] = {0, 0};
    double churn_sum[2] = {0.0, 0.0};
    double moved_sum[2] = {0.0, 0.0};
    for (int i = 0; i < seeds; ++i) {
      uint64_t run_seed = first_seed + static_cast<uint64_t>(i);
      FaultPlan run_plan = cls.plan;
      // Per-seed noise stream; the window schedule itself is shared by both arms.
      run_plan.set_seed(ChaosPlanSeed(run_seed));
      auto shared_plan = std::make_shared<const FaultPlan>(std::move(run_plan));
      for (int arm = 0; arm < 2; ++arm) {
        ExperimentOptions options;
        options.deadline_seconds = deadline;
        options.policy = PolicyKind::kJockey;
        options.seed = run_seed;
        options.jitter_input = false;
        options.fault_plan = shared_plan;
        options.observer = obs.observer();
        options.capture_events = true;
        options.timeseries = obs.timeseries();
        if (arm == 1) {
          options.control_override = hardened_control;
        }
        ExperimentResult result = RunExperiment(trained, options);
        ChurnStats churn = AllocationChurn(result.events);
        churn_sum[arm] += churn.changes;
        moved_sum[arm] += churn.moved_tokens;
        if (!result.met_deadline) {
          ++miss_count[arm];
          // The join needs this run's phase offsets, which follow the per-seed
          // plan — the shared attributor carries the class seed and would place
          // the on-phases wrong.
          FaultInjector run_injector(*shared_plan);
          misses.push_back({cls.name, arm == 1, run_seed, result.completion_seconds,
                            attributor.DominantWindow(0.0, result.completion_seconds),
                            MissBlame(result.events, deadline),
                            JoinSpikeDispatches(result.events, run_injector)});
        }
      }
    }
    std::printf("%-17s %5d  %6d/%-4d %6d/%-4d  %9.1f %9.1f %10.1f %10.1f\n",
                cls.name.c_str(), seeds, miss_count[0], seeds, miss_count[1], seeds,
                churn_sum[0] / seeds, churn_sum[1] / seeds, moved_sum[0] / seeds,
                moved_sum[1] / seeds);
    // Thrash bound: hardening must not buy its resilience with allocation thrash.
    // The +2/seed absolute slack keeps classes where vanilla barely reallocates
    // (so the ratio is ill-conditioned) from tripping on a handful of changes.
    if (churn_sum[1] > 1.5 * churn_sum[0] + 2.0 * seeds) {
      thrash_ok = false;
      std::printf("  ^ THRASH: hardened churn %.1f exceeds 1.5x vanilla %.1f (+2/run slack)\n",
                  churn_sum[1] / seeds, churn_sum[0] / seeds);
    }
    if (miss_count[1] < miss_count[0]) {
      ++classes_won;
    } else if (miss_count[1] == miss_count[0]) {
      ++classes_tied;
    }
  }

  if (!misses.empty()) {
    std::printf("\nmiss attribution (every miss -> the dominant fault window):\n");
    for (const Miss& miss : misses) {
      std::printf("  %-8s %-17s seed=%llu  %.1f min vs %.0f min", miss.hardened ? "hardened" : "vanilla",
                  miss.cls.c_str(), static_cast<unsigned long long>(miss.seed),
                  miss.completion_seconds / 60.0, deadline_minutes);
      if (miss.window != nullptr) {
        std::printf("  <- %s [%.1f, %.1f) min", FaultKindName(miss.window->kind),
                    miss.window->start_seconds / 60.0, miss.window->end_seconds / 60.0);
      } else {
        std::printf("  <- no fault window overlapped the run");
      }
      std::printf("  (blame: %s)", miss.blame.c_str());
      if (miss.spikes.in_window > 0) {
        std::printf("  [%d/%d dispatches in spike on-phase, %.0f%% vs 50%% duty]",
                    miss.spikes.on_phase, miss.spikes.in_window,
                    100.0 * miss.spikes.on_phase / miss.spikes.in_window);
      }
      std::printf("\n");
    }
  } else {
    std::printf("\nno deadline misses under any fault class\n");
  }
  std::printf("\nhardened controller: fewer misses on %d, tied on %d, worse on %d of %d class%s\n",
              classes_won, classes_tied,
              static_cast<int>(matrix.size()) - classes_won - classes_tied,
              static_cast<int>(matrix.size()), matrix.size() == 1 ? "" : "es");
  std::printf("thrash bound (hardened churn <= 1.5x vanilla + 2/run): %s\n",
              thrash_ok ? "ok on every class" : "VIOLATED");
  int finish = obs.Finish();
  return thrash_ok ? finish : (finish != 0 ? finish : 1);
}

// Sum of the non-exec postmortem budget components of a captured run: seconds the
// job spent queued, lagging the controller, degraded or redoing work rather than
// executing. The tune objective minimizes this after the miss count — between two
// settings that miss equally, prefer the one that wastes less of the latency budget.
double AttributedNonExecSeconds(const std::vector<TraceEvent>& events) {
  PostmortemReport report = BuildPostmortem(events);
  double total = 0.0;
  for (const JobPostmortem& job : report.jobs) {
    if (!job.finished) {
      continue;
    }
    for (const BudgetComponent& c : BudgetComponents(job.budget)) {
      if (std::string(c.name) != "exec") {
        total += c.seconds;
      }
    }
  }
  return total;
}

// %.6g with a deterministic "never locale-dependent" guarantee, for BENCH JSON.
std::string TuneNumber(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

int CmdTune(int argc, char** argv, const std::string& path, const std::string& trace_path) {
  double deadline_minutes = -1.0;
  uint64_t first_seed = 1;
  int seeds = 3;
  int knob_points = 3;
  double input_scale = 1.0;
  std::string classes = "all";
  std::string bench_out;
  GlobalOptions global;
  OptionsParser parser("jockey_cli tune <job.scope> <trace.txt> --deadline MIN [flags]");
  parser.AddDouble("--deadline", "MIN", "deadline in minutes (required)", &deadline_minutes);
  parser.AddInt("--seeds", "N", "runs per fault class and candidate", &seeds);
  parser.AddUint64("--seed", "S", "first seed of the sweep", &first_seed);
  parser.AddString("--classes", "LIST",
                   "comma-separated fault classes to tune against (default: all)", &classes);
  parser.AddInt("--knob-points", "K",
                "values tried per knob, default included (1 = defaults only)", &knob_points);
  parser.AddDouble("--input-scale", "X",
                   "scale task durations vs training (longer jobs span more ticks)",
                   &input_scale);
  parser.AddString("--bench-out", "FILE",
                   "write the machine-readable ranking here (BENCH_tune.json)", &bench_out);
  global.Register(parser);
  if (path == "--help" || path == "-h") {
    parser.PrintHelp(stdout);
    std::printf("fault classes (matrix order): %s\n", ChaosClassListLine().c_str());
    return 0;
  }
  if (!parser.Parse(argc, argv, 4)) {
    return 2;
  }
  if (parser.help_requested()) {
    std::printf("fault classes (matrix order): %s\n", ChaosClassListLine().c_str());
    return 0;
  }
  if (deadline_minutes <= 0.0) {
    std::fprintf(stderr, "tune requires --deadline <minutes>\n");
    return 2;
  }
  if (seeds < 1) {
    std::fprintf(stderr, "--seeds must be >= 1\n");
    return 2;
  }
  if (knob_points < 1 || knob_points > 5) {
    std::fprintf(stderr, "--knob-points must be in [1, 5]\n");
    return 2;
  }
  if (input_scale <= 0.0) {
    std::fprintf(stderr, "--input-scale must be > 0\n");
    return 2;
  }
  auto plan = CompileFile(path);
  if (!plan.has_value()) {
    return 1;
  }
  CliObservability obs(global);
  if (!obs.ok()) {
    return 1;
  }
  auto model = BuildModel(*plan, trace_path, global, obs.observer());
  if (!model.has_value()) {
    return 1;
  }
  const double deadline = deadline_minutes * 60.0;

  ClusterConfig reference = DefaultExperimentCluster(0);
  std::vector<ChaosClass> all = BuildChaosMatrix(deadline, reference.num_machines);
  std::vector<ChaosClass> matrix;
  if (classes == "all" || classes.empty()) {
    matrix = std::move(all);
  } else {
    std::stringstream list(classes);
    std::string token;
    while (std::getline(list, token, ',')) {
      bool known = false;
      for (const ChaosClass& entry : all) {
        if (entry.name == token) {
          matrix.push_back(entry);
          known = true;
          break;
        }
      }
      if (!known) {
        std::fprintf(stderr, "unknown fault class '%s' (see --help)\n", token.c_str());
        return 2;
      }
    }
  }
  if (matrix.empty()) {
    std::fprintf(stderr, "no fault classes selected\n");
    return 2;
  }

  TrainedJob trained;
  trained.tmpl = std::make_shared<const JobTemplate>(plan->job);
  trained.jockey = std::shared_ptr<const Jockey>(std::shared_ptr<const Jockey>(), &*model);

  ControlLoopConfig defaults = model->config().control;
  defaults.enable_degraded_mode = true;

  // One knob varied at a time against the hand-tuned defaults: a Fig 12/13-style
  // sensitivity sweep rather than a full grid, so the run count stays linear in
  // knob-points and the ranking stays attributable to a single dial. Ladders
  // alternate below/above the default; --knob-points K takes the first K-1.
  struct Candidate {
    std::string label;
    ControlLoopConfig config;
    std::vector<int> class_misses;
    int misses_total = 0;
    double attributed_seconds = 0.0;
    double churn_changes = 0.0;
    double churn_moved = 0.0;
    bool feasible = true;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"defaults", defaults, {}, 0, 0.0, 0.0, 0.0, true});
  const double stale_hold_ladder[] = {60.0, 300.0, 90.0, 240.0};
  const double blind_rate_ladder[] = {0.25, 0.75, 0.35, 1.0};
  const double gap_factor_ladder[] = {1.25, 2.5, 1.5, 3.0};
  const double grant_ewma_ladder[] = {0.25, 0.75, 0.35, 1.0};
  auto add = [&](const char* knob, double value, ControlLoopConfig config) {
    char label[64];
    std::snprintf(label, sizeof(label), "%s=%.6g", knob, value);
    candidates.push_back({label, config, {}, 0, 0.0, 0.0, 0.0, true});
  };
  for (int k = 0; k + 1 < knob_points; ++k) {
    ControlLoopConfig c = defaults;
    c.stale_hold_seconds = stale_hold_ladder[k];
    add("stale_hold_seconds", stale_hold_ladder[k], c);
    c = defaults;
    c.blind_escalation_rate = blind_rate_ladder[k];
    add("blind_escalation_rate", blind_rate_ladder[k], c);
    c = defaults;
    c.blackout_gap_factor = gap_factor_ladder[k];
    add("blackout_gap_factor", gap_factor_ladder[k], c);
    c = defaults;
    c.grant_ratio_ewma = grant_ewma_ladder[k];
    add("grant_ratio_ewma", grant_ewma_ladder[k], c);
  }

  std::printf("tune sweep: %d candidate%s x %d fault class%s x %d seed%s, deadline %.0f min "
              "(hardened controller)\n",
              static_cast<int>(candidates.size()), candidates.size() == 1 ? "" : "s",
              static_cast<int>(matrix.size()), matrix.size() == 1 ? "" : "es", seeds,
              seeds == 1 ? "" : "s", deadline_minutes);
  std::printf("objective: (deadline misses, non-exec postmortem seconds, churn), "
              "feasible = no class worse than defaults\n\n");

  for (Candidate& candidate : candidates) {
    candidate.class_misses.assign(matrix.size(), 0);
    for (size_t c = 0; c < matrix.size(); ++c) {
      for (int i = 0; i < seeds; ++i) {
        uint64_t run_seed = first_seed + static_cast<uint64_t>(i);
        FaultPlan run_plan = matrix[c].plan;
        // The same per-seed noise stream the chaos sweep uses, so tune-selected
        // knobs are judged on exactly the faults chaos reports.
        run_plan.set_seed(ChaosPlanSeed(run_seed));
        ExperimentOptions options;
        options.deadline_seconds = deadline;
        options.policy = PolicyKind::kJockey;
        options.seed = run_seed;
        options.jitter_input = false;
        options.input_scale = input_scale;
        options.fault_plan = std::make_shared<const FaultPlan>(std::move(run_plan));
        options.observer = obs.observer();
        options.capture_events = true;
        options.timeseries = obs.timeseries();
        options.control_override = candidate.config;
        ExperimentResult result = RunExperiment(trained, options);
        if (!result.met_deadline) {
          ++candidate.class_misses[c];
          ++candidate.misses_total;
        }
        candidate.attributed_seconds += AttributedNonExecSeconds(result.events);
        ChurnStats churn = AllocationChurn(result.events);
        candidate.churn_changes += churn.changes;
        candidate.churn_moved += churn.moved_tokens;
      }
    }
  }

  // Feasibility: no fault class may get *worse* than the defaults — a knob that
  // fixes adversarial spikes by breaking blackout recovery is not an improvement.
  const Candidate& baseline = candidates.front();
  for (Candidate& candidate : candidates) {
    for (size_t c = 0; c < matrix.size(); ++c) {
      if (candidate.class_misses[c] > baseline.class_misses[c]) {
        candidate.feasible = false;
        break;
      }
    }
  }

  // Rank: feasible first, then lexicographic on the objective. The sort is stable
  // and defaults are listed first, so a candidate must strictly improve something
  // to displace the hand-tuned defaults.
  std::vector<const Candidate*> ranked;
  for (const Candidate& candidate : candidates) {
    ranked.push_back(&candidate);
  }
  std::stable_sort(ranked.begin(), ranked.end(), [](const Candidate* a, const Candidate* b) {
    if (a->feasible != b->feasible) {
      return a->feasible;
    }
    if (a->misses_total != b->misses_total) {
      return a->misses_total < b->misses_total;
    }
    if (a->attributed_seconds != b->attributed_seconds) {
      return a->attributed_seconds < b->attributed_seconds;
    }
    return a->churn_moved < b->churn_moved;
  });

  std::printf("%4s  %-28s %7s %11s %10s %10s  %s\n", "rank", "candidate", "misses",
              "attrib[s]", "churn", "|dtok|", "feasible");
  for (size_t i = 0; i < ranked.size(); ++i) {
    const Candidate& candidate = *ranked[i];
    std::printf("%4d  %-28s %7d %11.1f %10.1f %10.1f  %s\n", static_cast<int>(i + 1),
                candidate.label.c_str(), candidate.misses_total, candidate.attributed_seconds,
                candidate.churn_changes, candidate.churn_moved,
                candidate.feasible ? "yes" : "NO");
  }

  const Candidate& selected = *ranked.front();
  int classes_improved = 0;
  for (size_t c = 0; c < matrix.size(); ++c) {
    if (selected.class_misses[c] < baseline.class_misses[c]) {
      ++classes_improved;
    }
  }
  std::printf("\nselected: %s (stale_hold=%.6g, blind_rate=%.6g, gap_factor=%.6g, "
              "grant_ewma=%.6g)\n",
              selected.label.c_str(), selected.config.stale_hold_seconds,
              selected.config.blind_escalation_rate, selected.config.blackout_gap_factor,
              selected.config.grant_ratio_ewma);
  std::printf("vs defaults: strictly better on %d, no worse on all %d class%s\n",
              classes_improved, static_cast<int>(matrix.size()),
              matrix.size() == 1 ? "" : "es");

  if (!bench_out.empty()) {
    std::ofstream out(bench_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", bench_out.c_str());
      return 1;
    }
    out << "{\"bench\":\"tune\",\"deadline_minutes\":" << TuneNumber(deadline_minutes)
        << ",\"seeds\":" << seeds << ",\"knob_points\":" << knob_points << ",\"classes\":[";
    for (size_t c = 0; c < matrix.size(); ++c) {
      out << (c == 0 ? "" : ",") << "\"" << matrix[c].name << "\"";
    }
    out << "],\"candidates\":[";
    for (size_t i = 0; i < ranked.size(); ++i) {
      const Candidate& candidate = *ranked[i];
      out << (i == 0 ? "" : ",") << "{\"rank\":" << (i + 1) << ",\"label\":\""
          << candidate.label << "\",\"stale_hold_seconds\":"
          << TuneNumber(candidate.config.stale_hold_seconds) << ",\"blind_escalation_rate\":"
          << TuneNumber(candidate.config.blind_escalation_rate) << ",\"blackout_gap_factor\":"
          << TuneNumber(candidate.config.blackout_gap_factor) << ",\"grant_ratio_ewma\":"
          << TuneNumber(candidate.config.grant_ratio_ewma) << ",\"misses\":"
          << candidate.misses_total << ",\"attributed_seconds\":"
          << TuneNumber(candidate.attributed_seconds) << ",\"churn_changes\":"
          << TuneNumber(candidate.churn_changes) << ",\"churn_moved_tokens\":"
          << TuneNumber(candidate.churn_moved) << ",\"feasible\":"
          << (candidate.feasible ? "true" : "false") << ",\"class_misses\":[";
      for (size_t c = 0; c < candidate.class_misses.size(); ++c) {
        out << (c == 0 ? "" : ",") << candidate.class_misses[c];
      }
      out << "]}";
    }
    out << "],\"selected\":\"" << selected.label
        << "\",\"classes_improved\":" << classes_improved << "}\n";
    if (!out) {
      std::fprintf(stderr, "error writing %s\n", bench_out.c_str());
      return 1;
    }
    std::printf("ranking written to %s\n", bench_out.c_str());
  }
  return obs.Finish();
}

int CmdReport(int argc, char** argv, const std::string& trace_path) {
  std::string chrome_out;
  std::string jsonl_out;
  int timeline_rows = 20;
  OptionsParser parser("jockey_cli report <trace.jsonl> [flags]");
  parser.AddString("--chrome-out", "FILE", "convert the trace for chrome://tracing",
                   &chrome_out);
  parser.AddString("--jsonl-out", "FILE", "re-emit the parsed trace as JSONL (round-trip copy)",
                   &jsonl_out);
  parser.AddInt("--timeline-rows", "N", "rows to print per job in the decision timeline",
                &timeline_rows);
  if (trace_path == "--help" || trace_path == "-h") {
    parser.PrintHelp(stdout);
    return 0;
  }
  if (!parser.Parse(argc, argv, 3)) {
    return 2;
  }
  if (parser.help_requested()) {
    return 0;
  }
  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", trace_path.c_str());
    return 1;
  }
  TraceReadResult trace = ReadJsonlTrace(in);
  if (trace.malformed_lines > 0) {
    std::fprintf(stderr, "warning: %d malformed line%s skipped\n", trace.malformed_lines,
                 trace.malformed_lines == 1 ? "" : "s");
  }
  std::printf("%zu events\n", trace.events.size());

  // Event totals, in the enum's (stable) order.
  std::map<int, int64_t> kind_counts;
  for (const TraceEvent& event : trace.events) {
    ++kind_counts[static_cast<int>(event.kind())];
  }
  for (const auto& [kind, count] : kind_counts) {
    std::printf("  %-20s %8lld\n", EventKindName(static_cast<EventKind>(kind)),
                static_cast<long long>(count));
  }

  // The control-decision timeline: what the loop saw and decided, tick by tick
  // (the trace-level reconstruction of Fig 6's allocation-over-time plots).
  std::map<int, std::vector<const ControlTickEvent*>> ticks_by_job;
  std::map<int, double> finish_by_job;
  for (const TraceEvent& event : trace.events) {
    if (const auto* tick = std::get_if<ControlTickEvent>(&event.payload)) {
      ticks_by_job[tick->job].push_back(tick);
    } else if (const auto* fin = std::get_if<JobFinishEvent>(&event.payload)) {
      finish_by_job[fin->job] = fin->completion_seconds;
    }
  }
  for (const auto& [job, ticks] : ticks_by_job) {
    std::printf("job %d: %zu control ticks", job, ticks.size());
    auto fin = finish_by_job.find(job);
    if (fin != finish_by_job.end()) {
      std::printf(", finished in %.1f min", fin->second / 60.0);
    }
    std::printf("\n");
    std::printf("  %8s %9s %10s %6s %9s %8s\n", "t[min]", "progress", "pred[min]", "raw",
                "smoothed", "granted");
    size_t rows = timeline_rows > 0 ? static_cast<size_t>(timeline_rows) : ticks.size();
    size_t step = std::max<size_t>(1, ticks.size() / rows);
    for (size_t i = 0; i < ticks.size(); i += step) {
      const ControlTickEvent& t = *ticks[i];
      std::printf("  %8.1f %9.3f %10.1f %6.0f %9.1f %8d\n", t.elapsed_seconds / 60.0, t.progress,
                  t.predicted_remaining_seconds / 60.0, t.raw_allocation, t.smoothed_allocation,
                  t.granted_tokens);
    }
  }

  // Scheduler disruptions: kills by reason and speculation outcomes.
  int64_t kills[3] = {0, 0, 0};
  int64_t reexecutions = 0;
  for (const TraceEvent& event : trace.events) {
    if (const auto* killed = std::get_if<TaskKilledEvent>(&event.payload)) {
      ++kills[static_cast<int>(killed->reason)];
      if (killed->requeued) {
        ++reexecutions;
      }
    }
  }
  if (kills[0] + kills[1] + kills[2] > 0) {
    std::printf("kills: %lld spare evictions, %lld task failures, %lld machine-failure kills "
                "(%lld re-executions)\n",
                static_cast<long long>(kills[0]), static_cast<long long>(kills[1]),
                static_cast<long long>(kills[2]), static_cast<long long>(reexecutions));
  }

  // Task-attempt durations with *exact* quantiles (the histogram retains raw
  // samples), reconstructed from the dispatch/complete/kill spans.
  {
    PostmortemReport spans = BuildPostmortem(trace.events);
    Histogram durations(DefaultLatencySecondsEdges());
    for (const JobPostmortem& job : spans.jobs) {
      for (const TaskAttemptSpan& span : job.spans) {
        durations.Observe(span.end_seconds - span.dispatch_seconds);
      }
    }
    if (durations.total_count() > 0) {
      std::printf("task attempts: %lld, duration p50 %.2fs  p90 %.2fs  p99 %.2fs  p99.9 %.2fs\n",
                  static_cast<long long>(durations.total_count()), durations.Quantile(0.5),
                  durations.Quantile(0.9), durations.Quantile(0.99), durations.Quantile(0.999));
    }
  }

  // Table-cache activity (the offline model build's side of the trace).
  std::map<int, int64_t> cache_codes;
  for (const TraceEvent& event : trace.events) {
    if (const auto* lookup = std::get_if<TableCacheLookupEvent>(&event.payload)) {
      ++cache_codes[static_cast<int>(lookup->code)];
    }
  }
  if (!cache_codes.empty()) {
    std::printf("table cache lookups:");
    for (const auto& [code, count] : cache_codes) {
      std::printf(" %s=%lld", CacheCodeName(static_cast<CacheCode>(code)),
                  static_cast<long long>(count));
    }
    std::printf("\n");
  }

  if (!chrome_out.empty()) {
    std::ofstream out(chrome_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", chrome_out.c_str());
      return 1;
    }
    WriteChromeTrace(out, trace.events);
    std::printf("chrome trace written to %s (open in chrome://tracing)\n", chrome_out.c_str());
  }
  if (!jsonl_out.empty()) {
    std::ofstream out(jsonl_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", jsonl_out.c_str());
      return 1;
    }
    for (const TraceEvent& event : trace.events) {
      out << ToJsonLine(event) << '\n';
    }
    std::printf("trace re-emitted to %s\n", jsonl_out.c_str());
  }
  return 0;
}

int CmdTimeline(int argc, char** argv, const std::string& series_path) {
  std::string json_out;
  std::string csv_out;
  int run = -1;
  int job = -1;
  bool cluster_only = false;
  bool jobs_only = false;
  bool at_risk_only = false;
  OptionsParser parser("jockey_cli timeline <timeseries.jsonl> [flags]");
  parser.AddString("--json", "FILE", "write the nested timeline document here (deterministic)",
                   &json_out);
  parser.AddString("--csv", "FILE", "write the long-form run,series,job,t,value CSV here",
                   &csv_out);
  parser.AddInt("--run", "N", "only this run index (multi-episode captures)", &run);
  parser.AddInt("--job", "N", "only this job id", &job);
  parser.AddFlag("--cluster-only", "only the cluster-wide series", &cluster_only);
  parser.AddFlag("--jobs-only", "only the per-job series", &jobs_only);
  parser.AddFlag("--at-risk-only",
                 "only jobs whose SLO health ever left on_track", &at_risk_only);
  parser.AddCheck([&json_out] { return ValidateOutputPath("--json", json_out); });
  parser.AddCheck([&csv_out] { return ValidateOutputPath("--csv", csv_out); });
  if (series_path == "--help" || series_path == "-h") {
    parser.PrintHelp(stdout);
    return 0;
  }
  if (!parser.Parse(argc, argv, 3)) {
    return 2;
  }
  if (parser.help_requested()) {
    return 0;
  }
  if (cluster_only && jobs_only) {
    std::fprintf(stderr, "--cluster-only and --jobs-only exclude each other\n");
    return 2;
  }
  std::ifstream in(series_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", series_path.c_str());
    return 1;
  }
  TimeSeriesReadResult read = ReadTimeSeriesJsonl(in);
  if (!read.series.has_value()) {
    std::fprintf(stderr, "%s:%d: %s\n", series_path.c_str(), read.line, read.message.c_str());
    return 1;
  }
  TimelineFilter filter;
  filter.run = run;
  filter.job = job;
  filter.cluster_only = cluster_only;
  filter.jobs_only = jobs_only;
  filter.at_risk_only = at_risk_only;
  TimeSeries view = FilterTimeSeries(*read.series, filter);
  std::ostringstream text;
  PrintTimeline(text, view);
  std::fputs(text.str().c_str(), stdout);
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    WriteTimelineJson(out, view);
    // stderr, like postmortem --json: stdout stays byte-identical either way.
    std::fprintf(stderr, "timeline JSON written to %s\n", json_out.c_str());
  }
  if (!csv_out.empty()) {
    std::ofstream out(csv_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", csv_out.c_str());
      return 1;
    }
    WriteTimelineCsv(out, view);
    std::fprintf(stderr, "timeline CSV written to %s\n", csv_out.c_str());
  }
  return 0;
}

int CmdPostmortem(int argc, char** argv, const std::string& trace_path) {
  double deadline_minutes = -1.0;
  std::string json_out;
  bool strict = false;
  OptionsParser parser("jockey_cli postmortem <trace.jsonl> [flags]");
  parser.AddDouble("--deadline", "MIN",
                   "deadline in minutes; adds the per-job miss/meet verdict",
                   &deadline_minutes);
  parser.AddString("--json", "FILE", "write the machine-readable postmortem here",
                   &json_out);
  parser.AddFlag("--strict", "fail on the first malformed trace line", &strict);
  if (trace_path == "--help" || trace_path == "-h") {
    parser.PrintHelp(stdout);
    return 0;
  }
  if (!parser.Parse(argc, argv, 3)) {
    return 2;
  }
  if (parser.help_requested()) {
    return 0;
  }
  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", trace_path.c_str());
    return 1;
  }
  TraceReadResult trace = ReadJsonlTrace(in, strict);
  if (strict && trace.first_issue.has_value()) {
    const TraceParseIssue& issue = *trace.first_issue;
    std::fprintf(stderr, "%s:%d: %s%s%s\n", trace_path.c_str(), issue.line_number,
                 issue.message.c_str(), issue.field.empty() ? "" : " at field ",
                 issue.field.c_str());
    return 1;
  }
  if (trace.malformed_lines > 0) {
    std::fprintf(stderr, "warning: %d malformed line%s skipped\n", trace.malformed_lines,
                 trace.malformed_lines == 1 ? "" : "s");
  }
  PostmortemOptions options;
  if (deadline_minutes > 0.0) {
    options.deadline_seconds = deadline_minutes * 60.0;
  }
  PostmortemReport report = BuildPostmortem(trace.events, options);
  std::ostringstream table;
  PrintPostmortem(table, report);
  std::fputs(table.str().c_str(), stdout);
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    WritePostmortemJson(out, report);
    // stderr, not stdout: the report text must be byte-identical regardless of
    // where (or whether) the JSON copy was written.
    std::fprintf(stderr, "postmortem JSON written to %s\n", json_out.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "compile") {
    return CmdCompile(argv[2]);
  }
  if (command == "dot") {
    return CmdDot(argv[2]);
  }
  if (command == "train") {
    return CmdTrain(argc, argv, argv[2]);
  }
  bool help_only = std::string(argv[2]) == "--help" || std::string(argv[2]) == "-h";
  if (command == "predict") {
    if (argc < 4 && !help_only) {
      return Usage();
    }
    return CmdPredict(argc, argv, argv[2], argc >= 4 ? argv[3] : "");
  }
  if (command == "run") {
    if (IsScenarioPath(argv[2])) {
      return CmdRunScenario(argc, argv, argv[2]);
    }
    if (argc < 4 && !help_only) {
      return Usage();
    }
    return CmdRun(argc, argv, argv[2], argc >= 4 ? argv[3] : "");
  }
  if (command == "chaos") {
    bool list_only = std::string(argv[2]) == "--list-classes";
    if (argc < 4 && !help_only && !list_only) {
      return Usage();
    }
    return CmdChaos(argc, argv, argv[2], argc >= 4 ? argv[3] : "");
  }
  if (command == "tune") {
    if (argc < 4 && !help_only) {
      return Usage();
    }
    return CmdTune(argc, argv, argv[2], argc >= 4 ? argv[3] : "");
  }
  if (command == "report") {
    return CmdReport(argc, argv, argv[2]);
  }
  if (command == "postmortem") {
    return CmdPostmortem(argc, argv, argv[2]);
  }
  if (command == "timeline") {
    return CmdTimeline(argc, argv, argv[2]);
  }
  return Usage();
}

}  // namespace
}  // namespace jockey

int main(int argc, char** argv) { return jockey::Main(argc, argv); }
