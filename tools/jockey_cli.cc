// jockey_cli: the operator-facing command line.
//
// Workflows mirror how an SLO job is onboarded in the paper:
//
//   jockey_cli compile job.scope
//       Compile a SCOPE-like script and print the execution plan (stages, widths,
//       barriers, optimizer notes).
//
//   jockey_cli train job.scope --trace trace.txt [--tokens N]
//       Execute one training run of the compiled job on the simulated shared cluster
//       and save its trace — the "readily available prior execution" Jockey models.
//
//   jockey_cli predict job.scope trace.txt [--deadline MIN]
//       Build the Jockey model from the trace; print the critical path, worst-case
//       completion predictions across allocations, and (with --deadline) the
//       admission verdict and a-priori allocation.
//
//   jockey_cli run job.scope trace.txt --deadline MIN [--seed S]
//       Run the job on the shared cluster under the Jockey control loop against the
//       deadline; print the outcome and the allocation timeline.
//
// predict/run build the C(p, a) table, the expensive offline step (~140 Monte Carlo
// simulations). The build fans across --threads workers and the frozen result is
// cached on disk (default .jockey_cache/, keyed by graph+trace+config), so repeated
// invocations on the same job — the recurring-workload case — skip simulation
// entirely. --no-cache disables the cache; --cache-dir relocates it.
//
//   jockey_cli dot job.scope
//       Print the plan as Graphviz.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/cluster/cluster_simulator.h"
#include "src/core/experiment.h"
#include "src/scope/planner.h"

namespace jockey {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  jockey_cli compile <job.scope>\n"
               "  jockey_cli dot <job.scope>\n"
               "  jockey_cli train <job.scope> --trace <out.txt> [--tokens N] [--seed S]\n"
               "  jockey_cli predict <job.scope> <trace.txt> [--deadline MIN]\n"
               "  jockey_cli run <job.scope> <trace.txt> --deadline MIN [--seed S]\n"
               "model options (predict/run): [--threads N] [--cache-dir DIR] [--no-cache]\n");
  return 2;
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Flags {
  std::string trace_path;
  int tokens = 40;
  uint64_t seed = 1;
  double deadline_minutes = -1.0;
  int threads = 0;  // 0 = hardware concurrency
  std::string cache_dir = ".jockey_cache";
  bool use_cache = true;
  bool ok = true;
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    auto need_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", name);
        flags.ok = false;
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (const char* v = need_value("--trace")) {
        flags.trace_path = v;
      }
    } else if (std::strcmp(argv[i], "--tokens") == 0) {
      if (const char* v = need_value("--tokens")) {
        flags.tokens = std::atoi(v);
      }
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (const char* v = need_value("--seed")) {
        flags.seed = static_cast<uint64_t>(std::atoll(v));
      }
    } else if (std::strcmp(argv[i], "--deadline") == 0) {
      if (const char* v = need_value("--deadline")) {
        flags.deadline_minutes = std::atof(v);
      }
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (const char* v = need_value("--threads")) {
        flags.threads = std::atoi(v);
      }
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      if (const char* v = need_value("--cache-dir")) {
        flags.cache_dir = v;
      }
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      flags.use_cache = false;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      flags.ok = false;
    }
  }
  return flags;
}

std::optional<PlanResult> CompileFile(const std::string& path) {
  auto source = ReadFile(path);
  if (!source.has_value()) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  PlannerOptions options;
  options.job_name = path;
  PlanResult plan = CompileScopeScript(*source, options);
  if (!plan.ok) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), plan.error.c_str());
    return std::nullopt;
  }
  return plan;
}

int CmdCompile(const std::string& path) {
  auto plan = CompileFile(path);
  if (!plan.has_value()) {
    return 1;
  }
  const JobGraph& g = plan->job.graph;
  std::printf("plan: %d stages, %d tasks, %d barrier stages\n", g.num_stages(), g.num_tasks(),
              g.num_barrier_stages());
  for (int s = 0; s < g.num_stages(); ++s) {
    std::printf("  [%2d] %-24s %5d tasks  cost %.1fs%s", s, g.stage(s).name.c_str(),
                g.stage(s).num_tasks, plan->job.runtime[static_cast<size_t>(s)].median_seconds,
                g.stage(s).IsBarrier() ? "  (barrier)" : "");
    if (!g.stage(s).inputs.empty()) {
      std::printf("  <-");
      for (const auto& e : g.stage(s).inputs) {
        std::printf(" %s", g.stage(e.from).name.c_str());
      }
    }
    std::printf("\n");
  }
  for (const auto& note : plan->notes) {
    std::printf("  note: %s\n", note.c_str());
  }
  return 0;
}

int CmdDot(const std::string& path) {
  auto plan = CompileFile(path);
  if (!plan.has_value()) {
    return 1;
  }
  std::printf("%s", plan->job.graph.ToDot().c_str());
  return 0;
}

int CmdTrain(const std::string& path, const Flags& flags) {
  if (flags.trace_path.empty()) {
    std::fprintf(stderr, "train requires --trace <out.txt>\n");
    return 2;
  }
  auto plan = CompileFile(path);
  if (!plan.has_value()) {
    return 1;
  }
  ClusterConfig config = DefaultExperimentCluster(flags.seed);
  config.background.overload_rate_per_hour = 0.0;
  ClusterSimulator cluster(config);
  JobSubmission submission;
  submission.guaranteed_tokens = flags.tokens;
  submission.seed = flags.seed * 7919 + 13;
  int id = cluster.SubmitJob(plan->job, submission);
  cluster.Run();
  const ClusterRunResult& r = cluster.result(id);
  if (!r.finished) {
    std::fprintf(stderr, "training run did not finish\n");
    return 1;
  }
  std::ofstream out(flags.trace_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", flags.trace_path.c_str());
    return 1;
  }
  r.trace.Save(out);
  std::printf("training run: %.1f min at %d guaranteed tokens, %.1f token-hours of work\n",
              r.CompletionSeconds() / 60.0, flags.tokens, r.trace.TotalWorkSeconds() / 3600.0);
  std::printf("trace saved to %s (%zu task records)\n", flags.trace_path.c_str(),
              r.trace.tasks.size());
  return 0;
}

std::optional<Jockey> BuildModel(const PlanResult& plan, const std::string& trace_path,
                                 const Flags& flags) {
  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", trace_path.c_str());
    return std::nullopt;
  }
  RunTrace trace = RunTrace::Load(in);
  if (static_cast<int>(trace.tasks.size()) != plan.job.graph.num_tasks()) {
    std::fprintf(stderr, "trace has %zu tasks but the plan has %d — wrong trace?\n",
                 trace.tasks.size(), plan.job.graph.num_tasks());
    return std::nullopt;
  }
  JockeyConfig config;
  config.model.threads = flags.threads;
  if (flags.use_cache) {
    config.model.cache_dir = flags.cache_dir;
  }
  Jockey model(plan.job.graph, trace, config);
  const CompletionModelBuildStats& stats = model.table_build_stats();
  if (stats.cache_hit) {
    std::printf("C(p,a) table: warm cache hit in %s — skipped simulation\n",
                flags.cache_dir.c_str());
  } else {
    std::printf("C(p,a) table: simulated %d runs on %d thread%s%s\n", stats.simulated_runs,
                stats.threads_used, stats.threads_used == 1 ? "" : "s",
                flags.use_cache ? " (cached for next time)" : "");
  }
  return model;
}

int CmdPredict(const std::string& path, const std::string& trace_path, const Flags& flags) {
  auto plan = CompileFile(path);
  if (!plan.has_value()) {
    return 1;
  }
  auto model = BuildModel(*plan, trace_path, flags);
  if (!model.has_value()) {
    return 1;
  }
  std::printf("critical path (minimum feasible deadline): %.1f min\n",
              model->FeasibleDeadlineSeconds() / 60.0);
  std::printf("worst-case completion predictions:\n");
  for (int tokens : {5, 10, 20, 40, 60, 80, 100}) {
    std::printf("  %3d tokens -> %6.1f min\n", tokens,
                model->PredictCompletionSeconds(tokens) / 60.0);
  }
  if (flags.deadline_minutes > 0.0) {
    double deadline = flags.deadline_minutes * 60.0;
    bool fits = model->WouldFit(deadline, 100);
    std::printf("deadline %.0f min: %s", flags.deadline_minutes, fits ? "FITS" : "does NOT fit");
    if (fits) {
      std::printf(" (a-priori allocation: %d tokens)", model->InitialAllocation(deadline));
    }
    std::printf("\n");
  }
  return 0;
}

int CmdRun(const std::string& path, const std::string& trace_path, const Flags& flags) {
  if (flags.deadline_minutes <= 0.0) {
    std::fprintf(stderr, "run requires --deadline <minutes>\n");
    return 2;
  }
  auto plan = CompileFile(path);
  if (!plan.has_value()) {
    return 1;
  }
  auto model = BuildModel(*plan, trace_path, flags);
  if (!model.has_value()) {
    return 1;
  }
  double deadline = flags.deadline_minutes * 60.0;
  auto controller = model->MakeController(deadline);
  ClusterConfig config = DefaultExperimentCluster(flags.seed * 2654435761ULL + 17);
  ClusterSimulator cluster(config);
  JobSubmission submission;
  submission.controller = controller.get();
  submission.seed = flags.seed * 104729 + 71;
  int id = cluster.SubmitJob(plan->job, submission);
  cluster.Run();
  const ClusterRunResult& r = cluster.result(id);
  bool met = r.finished && r.CompletionSeconds() <= deadline;
  std::printf("finished in %.1f min vs %.0f min deadline: %s\n", r.CompletionSeconds() / 60.0,
              flags.deadline_minutes, met ? "SLO MET" : "SLO MISSED");
  std::printf("%8s %10s %8s\n", "t[min]", "granted", "running");
  size_t step = std::max<size_t>(1, r.timeline.size() / 20);
  for (size_t i = 0; i < r.timeline.size(); i += step) {
    std::printf("%8.1f %10d %8d\n", r.timeline[i].time / 60.0, r.timeline[i].guaranteed,
                r.timeline[i].running);
  }
  return met ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  std::string command = argv[1];
  std::string script = argv[2];
  if (command == "compile") {
    return CmdCompile(script);
  }
  if (command == "dot") {
    return CmdDot(script);
  }
  if (command == "train") {
    Flags flags = ParseFlags(argc, argv, 3);
    return flags.ok ? CmdTrain(script, flags) : 2;
  }
  if (command == "predict") {
    if (argc < 4) {
      return Usage();
    }
    Flags flags = ParseFlags(argc, argv, 4);
    return flags.ok ? CmdPredict(script, argv[3], flags) : 2;
  }
  if (command == "run") {
    if (argc < 4) {
      return Usage();
    }
    Flags flags = ParseFlags(argc, argv, 4);
    return flags.ok ? CmdRun(script, argv[3], flags) : 2;
  }
  return Usage();
}

}  // namespace
}  // namespace jockey

int main(int argc, char** argv) { return jockey::Main(argc, argv); }
