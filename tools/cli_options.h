// Shared flag handling for every jockey_cli subcommand.
//
// Each subcommand declares its flags against one OptionsParser; the parser owns
// `--help` (prints the registered flags with their value names and defaults) and
// rejects unknown flags with a pointer to `--help`. GlobalOptions carries the flags
// every subcommand accepts — the observability outputs (--trace-out, --metrics-out)
// and the C(p,a)-table cache knobs (--threads, --cache-dir, --no-cache,
// --cache-max-bytes) — so train/predict/run/report cannot drift apart in spelling
// or semantics.

#ifndef TOOLS_CLI_OPTIONS_H_
#define TOOLS_CLI_OPTIONS_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace jockey {

class OptionsParser {
 public:
  // `usage` is the one-line synopsis printed above the flag list, e.g.
  // "jockey_cli run <job.scope> <trace.txt> --deadline MIN [flags]".
  explicit OptionsParser(std::string usage) : usage_(std::move(usage)) {}

  // Value-taking flags. `value_name` appears in --help (e.g. "FILE", "N").
  void AddString(const char* name, const char* value_name, const char* help, std::string* out);
  void AddInt(const char* name, const char* value_name, const char* help, int* out);
  void AddUint64(const char* name, const char* value_name, const char* help, uint64_t* out);
  void AddDouble(const char* name, const char* value_name, const char* help, double* out);
  // Valueless flag; stores `store` (true by default, false for --no-xxx switches).
  void AddFlag(const char* name, const char* help, bool* out, bool store = true);

  // Post-parse check, run by Parse() after every flag is consumed, in
  // registration order. Returns the empty string when satisfied; otherwise the
  // diagnostic to print. Lets flag owners validate cross-flag state (output-path
  // parent directories, say) up front — before a command spends minutes building
  // models only to fail at the final write.
  void AddCheck(std::function<std::string()> check);

  // Parses argv[first..argc). Returns false on an unknown flag, a missing value,
  // or the first failing registered check (an error is printed to stderr).
  // `--help` prints the help text and sets help_requested(); the caller should
  // then exit 0 without running the command.
  bool Parse(int argc, char** argv, int first);

  bool help_requested() const { return help_requested_; }
  void PrintHelp(std::FILE* out) const;

 private:
  struct Flag {
    std::string name;
    std::string value_name;  // empty for valueless flags
    std::string help;
    std::function<bool(const char*)> set;  // value may be nullptr for valueless flags
  };

  void Add(const char* name, const char* value_name, const char* help,
           std::function<bool(const char*)> set);

  std::string usage_;
  std::vector<Flag> flags_;
  std::vector<std::function<std::string()>> checks_;
  bool help_requested_ = false;
};

// Flags shared by every subcommand that builds models or runs the cluster.
struct GlobalOptions {
  // Observability: stream every trace event to FILE as JSONL / dump the metrics
  // registry to FILE as JSON when the command finishes. Empty = detached.
  std::string trace_out;
  std::string metrics_out;
  // Time-series telemetry: sample utilization/allocation/SLO-health timelines
  // during the run and write them to FILE as JSONL (`jockey_cli timeline` reads
  // them back). Empty = detached.
  std::string timeseries_out;
  // Control-plane profiler: enable the scoped profiler for the command and write
  // the aggregated call-path stats to FILE as JSON. Empty = profiler disabled.
  std::string profile_out;
  // C(p,a) model build: worker threads (0 = hardware concurrency) and the on-disk
  // table cache (satellite: --cache-max-bytes bounds it with LRU eviction).
  int threads = 0;
  std::string cache_dir = ".jockey_cache";
  bool use_cache = true;
  uint64_t cache_max_bytes = 0;

  // Registers the shared flags plus an up-front output-path check: Parse() fails
  // with a first-bad-flag diagnostic when any --*-out file's parent directory is
  // missing, instead of the command discovering it after the expensive work.
  // `this` must outlive the parser.
  void Register(OptionsParser& parser);

  // The check behind Register(): empty when every requested output path has an
  // existing parent directory, else the diagnostic naming the first bad flag in
  // registration order (--trace-out, --metrics-out, --timeseries-out, --profile).
  std::string ValidateOutputPaths() const;
};

// Single-path form of the check above, for subcommand-local output flags
// (e.g. `timeline --json`). Empty when `path` is empty or its parent directory
// exists, else "<flag> <path>: parent directory '<dir>' does not exist".
std::string ValidateOutputPath(const char* flag, const std::string& path);

}  // namespace jockey

#endif  // TOOLS_CLI_OPTIONS_H_
