#include "tools/cli_options.h"

#include <sys/stat.h>

#include <cstdlib>
#include <cstring>

namespace jockey {

void OptionsParser::Add(const char* name, const char* value_name, const char* help,
                        std::function<bool(const char*)> set) {
  flags_.push_back(Flag{name, value_name, help, std::move(set)});
}

void OptionsParser::AddString(const char* name, const char* value_name, const char* help,
                              std::string* out) {
  Add(name, value_name, help, [out](const char* v) {
    *out = v;
    return true;
  });
}

void OptionsParser::AddInt(const char* name, const char* value_name, const char* help, int* out) {
  Add(name, value_name, help, [out](const char* v) {
    char* end = nullptr;
    long parsed = std::strtol(v, &end, 10);
    if (end == v || *end != '\0') {
      return false;
    }
    *out = static_cast<int>(parsed);
    return true;
  });
}

void OptionsParser::AddUint64(const char* name, const char* value_name, const char* help,
                              uint64_t* out) {
  Add(name, value_name, help, [out](const char* v) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') {
      return false;
    }
    *out = static_cast<uint64_t>(parsed);
    return true;
  });
}

void OptionsParser::AddDouble(const char* name, const char* value_name, const char* help,
                              double* out) {
  Add(name, value_name, help, [out](const char* v) {
    char* end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0') {
      return false;
    }
    *out = parsed;
    return true;
  });
}

void OptionsParser::AddFlag(const char* name, const char* help, bool* out, bool store) {
  Add(name, /*value_name=*/"", help, [out, store](const char* /*unused*/) {
    *out = store;
    return true;
  });
}

void OptionsParser::AddCheck(std::function<std::string()> check) {
  checks_.push_back(std::move(check));
}

bool OptionsParser::Parse(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintHelp(stdout);
      help_requested_ = true;
      return true;
    }
    const Flag* match = nullptr;
    for (const Flag& flag : flags_) {
      if (flag.name == arg) {
        match = &flag;
        break;
      }
    }
    if (match == nullptr) {
      std::fprintf(stderr, "unknown flag '%s' (see --help)\n", arg);
      return false;
    }
    const char* value = nullptr;
    if (!match->value_name.empty()) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value <%s>\n", match->name.c_str(),
                     match->value_name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!match->set(value)) {
      std::fprintf(stderr, "invalid value '%s' for %s\n", value, match->name.c_str());
      return false;
    }
  }
  for (const auto& check : checks_) {
    std::string problem = check();
    if (!problem.empty()) {
      std::fprintf(stderr, "%s\n", problem.c_str());
      return false;
    }
  }
  return true;
}

void OptionsParser::PrintHelp(std::FILE* out) const {
  std::fprintf(out, "usage: %s\n", usage_.c_str());
  if (flags_.empty()) {
    return;
  }
  std::fprintf(out, "flags:\n");
  for (const Flag& flag : flags_) {
    std::string left = flag.name;
    if (!flag.value_name.empty()) {
      left += " <" + flag.value_name + ">";
    }
    std::fprintf(out, "  %-26s %s\n", left.c_str(), flag.help.c_str());
  }
}

namespace {

// "" for a bare filename (the working directory always exists), else everything
// before the last '/'.
std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return std::string();
  }
  return slash == 0 ? "/" : path.substr(0, slash);
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

}  // namespace

std::string ValidateOutputPath(const char* flag, const std::string& path) {
  if (path.empty()) {
    return std::string();
  }
  std::string parent = ParentDir(path);
  if (!parent.empty() && !IsDirectory(parent)) {
    return std::string(flag) + " " + path + ": parent directory '" + parent +
           "' does not exist";
  }
  return std::string();
}

std::string GlobalOptions::ValidateOutputPaths() const {
  const struct {
    const char* flag;
    const std::string* path;
  } outputs[] = {{"--trace-out", &trace_out},
                 {"--metrics-out", &metrics_out},
                 {"--timeseries-out", &timeseries_out},
                 {"--profile", &profile_out}};
  for (const auto& output : outputs) {
    std::string issue = ValidateOutputPath(output.flag, *output.path);
    if (!issue.empty()) {
      return issue;
    }
  }
  return std::string();
}

void GlobalOptions::Register(OptionsParser& parser) {
  parser.AddString("--trace-out", "FILE", "write every trace event to FILE as JSONL",
                   &trace_out);
  parser.AddString("--metrics-out", "FILE", "write the metrics snapshot to FILE as JSON",
                   &metrics_out);
  parser.AddString("--timeseries-out", "FILE",
                   "sample utilization/allocation/SLO-health timelines to FILE as JSONL "
                   "(read back with 'jockey_cli timeline')",
                   &timeseries_out);
  parser.AddString("--profile", "FILE",
                   "enable the control-plane profiler; write call-path stats to FILE as JSON",
                   &profile_out);
  parser.AddInt("--threads", "N", "model-build worker threads (0 = hardware concurrency)",
                &threads);
  parser.AddString("--cache-dir", "DIR", "C(p,a) table cache directory", &cache_dir);
  parser.AddFlag("--no-cache", "disable the C(p,a) table cache", &use_cache, /*store=*/false);
  parser.AddUint64("--cache-max-bytes", "N",
                   "prune the table cache to N bytes, evicting least-recently-used entries "
                   "(0 = unbounded)",
                   &cache_max_bytes);
  parser.AddCheck([this] { return ValidateOutputPaths(); });
}

}  // namespace jockey
